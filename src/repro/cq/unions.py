"""Unions of conjunctive queries (the Sagiv–Yannakakis baseline [36]).

The paper's related-work baseline for flat relational expressions with
union: ``⋃ᵢ Qᵢ ⊑ ⋃ⱼ Q'ⱼ`` iff every disjunct ``Qᵢ`` is contained in
*some* disjunct ``Q'ⱼ`` — so containment and equivalence of unions of
conjunctive queries reduce to quadratically many classical tests.

COQL deliberately drops union from *element positions* (else set
difference becomes expressible [7]); top-level ``union`` bodies are the
COQL counterpart of this module, decided by the same reduction at the
engine level (:meth:`repro.engine.ContainmentEngine.contains` over
:mod:`repro.coql.family` families).

The per-disjunct tests route through
:meth:`repro.engine.ContainmentEngine.cq_contains`: same verdicts as
the legacy :func:`repro.cq.containment.contains`, but decided on the
bitset homomorphism kernel with :class:`SearchCounters`
instrumentation, memoized under the ``branch_verdict`` artifact kind,
and accepting an ``ordering=`` strategy override.
"""

from repro.errors import (
    ReproError,
    IncomparableQueriesError,
    union_arity_mismatch,
)
from repro.cq.query import ConjunctiveQuery
from repro.cq.evaluate import evaluate

__all__ = ["UnionQuery", "union_contains", "union_equivalent"]


def _engine_or_default(engine):
    if engine is not None:
        return engine
    from repro.engine import default_engine

    return default_engine()


class UnionQuery:
    """A finite union of conjunctive queries with equal head arity."""

    __slots__ = ("disjuncts", "name")

    def __init__(self, disjuncts, name="u"):
        disjuncts = tuple(disjuncts)
        if not disjuncts:
            raise ReproError("a union query needs at least one disjunct")
        arities = {len(q.head) for q in disjuncts}
        if len(arities) != 1:
            raise IncomparableQueriesError(union_arity_mismatch(arities))
        for q in disjuncts:
            if not isinstance(q, ConjunctiveQuery):
                raise ReproError("disjuncts must be conjunctive queries")
        object.__setattr__(self, "disjuncts", disjuncts)
        object.__setattr__(self, "name", name)

    def __setattr__(self, name, value):
        raise AttributeError("UnionQuery is immutable")

    @property
    def arity(self):
        return len(self.disjuncts[0].head)

    def evaluate(self, database):
        """The union of the disjuncts' answers."""
        answer = frozenset()
        for disjunct in self.disjuncts:
            answer |= evaluate(disjunct, database)
        return answer

    def minimize(self, engine=None, ordering=None):
        """Drop disjuncts contained in other disjuncts.

        :param engine: the :class:`repro.engine.ContainmentEngine` to
            decide the pairwise tests on (default: the process-wide
            default engine), so repeated minimization shares its
            ``branch_verdict`` memo table.
        :param ordering: homomorphism-search ordering for the tests
            (:data:`repro.cq.propagation.ORDERINGS`); None keeps the
            ambient default.
        """
        engine = _engine_or_default(engine)
        kept = list(self.disjuncts)
        changed = True
        while changed:
            changed = False
            for i, candidate in enumerate(kept):
                rest = kept[:i] + kept[i + 1:]
                if rest and any(
                    engine.cq_contains(other, candidate, ordering=ordering)
                    for other in rest
                ):
                    kept = rest
                    changed = True
                    break
        return UnionQuery(kept, self.name)

    def __repr__(self):
        return "UnionQuery(%s; %d disjuncts)" % (self.name, len(self.disjuncts))


def union_contains(sup, sub, engine=None, ordering=None):
    """``sub ⊑ sup`` for union queries (Sagiv–Yannakakis).

    Each disjunct of *sub* must be contained in some disjunct of *sup*.
    Disjunct pairs are visited in declaration order with the inner
    ``any`` short-circuiting, and each pair is decided through
    :meth:`~repro.engine.ContainmentEngine.cq_contains` (see module
    docstring), so verdicts are deterministic and memoized.
    """
    sub = _as_union(sub)
    sup = _as_union(sup)
    if sub.arity != sup.arity:
        raise IncomparableQueriesError(
            union_arity_mismatch((sub.arity, sup.arity))
        )
    engine = _engine_or_default(engine)
    return all(
        any(
            engine.cq_contains(candidate, disjunct, ordering=ordering)
            for candidate in sup.disjuncts
        )
        for disjunct in sub.disjuncts
    )


def union_equivalent(first, second, engine=None, ordering=None):
    """Equivalence of union queries (containment both ways)."""
    return union_contains(
        first, second, engine=engine, ordering=ordering
    ) and union_contains(second, first, engine=engine, ordering=ordering)


def _as_union(query):
    if isinstance(query, UnionQuery):
        return query
    if isinstance(query, ConjunctiveQuery):
        return UnionQuery((query,))
    from repro.grouping.query import GroupingQuery

    if isinstance(query, GroupingQuery):
        raise ReproError(
            "grouping queries are not flat unions; decide COQL-level "
            "unions with repro.engine.ContainmentEngine.contains (or "
            "repro.coql.family for the branch expansion)"
        )
    raise ReproError("not a (union of) conjunctive queries: %r" % (query,))
