"""Random and structured generators for databases and queries.

All generators take a :class:`random.Random` instance (or a seed) so
experiments are reproducible.
"""

import random

from repro.objects.database import Database, Relation
from repro.objects.values import Record, CSet
from repro.cq.terms import Var, Const, Atom
from repro.cq.query import ConjunctiveQuery, positional_columns
from repro.grouping.query import GroupingNode, GroupingQuery

__all__ = [
    "random_flat_database",
    "random_cq",
    "random_grouping_query",
    "chain_query",
    "star_query",
    "chain_grouping_query",
    "random_coql",
    "COQL_SCHEMA",
]


def _rng(seed_or_rng):
    if isinstance(seed_or_rng, random.Random):
        return seed_or_rng
    return random.Random(seed_or_rng)


def random_flat_database(schema, rows=4, domain=4, seed=0):
    """A random flat database.

    :param schema: ``{relation name: arity}``.
    :param rows: rows per relation (each drawn uniformly; duplicates
        collapse, so relations may end up smaller).
    :param domain: atoms are drawn from ``0 .. domain-1``.
    """
    rng = _rng(seed)
    relations = []
    for name in sorted(schema):
        arity = schema[name]
        cols = positional_columns(arity)
        records = []
        for __ in range(rows):
            records.append(
                Record({c: rng.randrange(domain) for c in cols})
            )
        relations.append(Relation(name, CSet(records)))
    return Database(relations)


def random_cq(schema, atoms=3, variables=4, head_arity=2, seed=0, constants=0):
    """A random conjunctive query over *schema* (``{name: arity}``).

    Variables are drawn from a pool of size *variables*; with probability
    proportional to *constants* an argument position becomes a small
    integer constant instead.  The head picks *head_arity* variables that
    occur in the body (so the query is always safe).
    """
    rng = _rng(seed)
    pool = [Var("X%d" % i) for i in range(variables)]
    names = sorted(schema)
    body = []
    for __ in range(atoms):
        name = rng.choice(names)
        args = []
        for __ in range(schema[name]):
            if constants and rng.random() < constants / (constants + 4):
                args.append(Const(rng.randrange(3)))
            else:
                args.append(rng.choice(pool))
        body.append(Atom(name, args))
    body_vars = sorted({v for atom in body for v in atom.variables()})
    if not body_vars:
        head = ()
    else:
        head = tuple(
            rng.choice(body_vars) for __ in range(min(head_arity, len(body_vars)))
        )
    return ConjunctiveQuery(head, body, "q")


def chain_query(length, head_arity=2, pred="e"):
    """The path query ``q(X0, Xn) :- e(X0,X1), ..., e(Xn-1,Xn)``."""
    variables = [Var("X%d" % i) for i in range(length + 1)]
    body = [
        Atom(pred, (variables[i], variables[i + 1])) for i in range(length)
    ]
    head = (variables[0], variables[-1])[:head_arity]
    return ConjunctiveQuery(head, body, "chain%d" % length)


def star_query(points, pred="e"):
    """``q(C) :- e(C, X1), ..., e(C, Xk)`` — a star with *points* rays."""
    center = Var("C")
    body = [Atom(pred, (center, Var("X%d" % i))) for i in range(points)]
    return ConjunctiveQuery((center,), body, "star%d" % points)


def chain_grouping_query(depth, pred="e", fanout_values=1):
    """A depth-*d* grouping query over a single binary relation.

    Level 0 selects ``e(X0, X1)`` and exposes ``a0 = X0``; each deeper
    level *i* joins ``e(X_i, X_{i+1})``, is grouped by ``X_i`` (the
    parent's last variable) and exposes ``a_i = X_{i+1}``.  Useful as a
    scaling family for the depth-dependent quantifier alternations.
    """
    variables = [Var("X%d" % i) for i in range(depth + 1)]

    def build(level):
        atoms = (Atom(pred, (variables[level], variables[level + 1])),)
        values = {"a%d" % level: variables[level + 1]}
        children = ()
        if level + 1 < depth:
            children = (build(level + 1),)
        label = "root" if level == 0 else "n%d" % level
        index = () if level == 0 else (variables[level],)
        return GroupingNode(label, atoms, values, index, children)

    root = build(0)
    return GroupingQuery(
        GroupingNode("", root.own_atoms, dict(root.values), (), root.children),
        "chain_g%d" % depth,
    )


def random_grouping_query(
    schema,
    seed=0,
    depth=2,
    atoms_per_node=2,
    variables=5,
    values_per_node=1,
    branching=1,
):
    """A random grouping-query tree of the given depth over *schema*.

    Each node introduces up to *atoms_per_node* random atoms; child
    indexes are random non-empty subsets of the parent-scope variables;
    each node exposes *values_per_node* value columns drawn from its
    scope.  *branching* children are generated per non-leaf node
    (labelled ``c0``, ``c1``, …), so ``branching=1`` yields the chain
    shape and larger values yield proper trees.
    """
    rng = _rng(seed)
    names = sorted(schema)
    pool = [Var("X%d" % i) for i in range(variables)]

    def make_atoms(count):
        out = []
        for __ in range(count):
            name = rng.choice(names)
            out.append(
                Atom(name, tuple(rng.choice(pool) for __ in range(schema[name])))
            )
        return tuple(out)

    def build(level, scope):
        atoms = make_atoms(rng.randint(1, atoms_per_node))
        new_scope = sorted(
            set(scope) | {v for a in atoms for v in a.variables()}
        )
        values = {}
        for i in range(values_per_node):
            values["v%d" % i] = rng.choice(new_scope)
        children = []
        if level < depth - 1:
            for position in range(branching):
                index_size = rng.randint(1, min(2, len(new_scope)))
                index = tuple(rng.sample(new_scope, index_size))
                child = build(level + 1, new_scope)
                label = "c" if branching == 1 else "c%d" % position
                children.append(
                    GroupingNode(
                        label,
                        child.own_atoms,
                        dict(child.values),
                        index,
                        child.children,
                    )
                )
        return GroupingNode("", atoms, values, (), tuple(children))

    root = build(0, [])
    return GroupingQuery(root, "rand_g")


#: The fixed flat schema the random COQL generator works over.
COQL_SCHEMA = {"r": ("a", "b"), "s": ("k", "b")}


def random_coql(seed=0, depth=2):
    """A random COQL query over :data:`COQL_SCHEMA`, as concrete syntax.

    Depth 1 produces flat select-from-where queries; depth 2 adds one
    nested subquery whose conditions may link to the outer variables.
    All generated queries fall inside the implemented decidable fragment
    (inner conditions always involve an inner variable).
    """
    rng = _rng(seed)
    relations = sorted(COQL_SCHEMA)

    def outer_path(variables):
        var = rng.choice(variables)
        attr = rng.choice(COQL_SCHEMA[var[0]])
        return "%s.%s" % (var, attr)

    gen_count = rng.randint(1, 2)
    gens = []
    variables = []
    for i in range(gen_count):
        rel = rng.choice(relations)
        var = "%s%d" % (rel, i)
        variables.append(var)
        gens.append("%s in %s" % (var, rel))
    conds = []
    if rng.random() < 0.5 and len(variables) >= 1:
        left = outer_path(variables)
        right = outer_path(variables) if rng.random() < 0.7 else str(rng.randrange(2))
        if left != right:
            conds.append("%s = %s" % (left, right))

    head_fields = ["v: %s" % outer_path(variables)]
    if depth >= 2:
        inner_rel = rng.choice(relations)
        inner_var = "%s9" % inner_rel
        inner_conds = []
        if rng.random() < 0.8:
            inner_attr = rng.choice(COQL_SCHEMA[inner_rel])
            partner = (
                outer_path(variables)
                if rng.random() < 0.7
                else str(rng.randrange(2))
            )
            inner_conds.append("%s.%s = %s" % (inner_var, inner_attr, partner))
        inner = "select [w: %s.%s] from %s in %s" % (
            inner_var,
            rng.choice(COQL_SCHEMA[inner_rel]),
            inner_var,
            inner_rel,
        )
        if inner_conds:
            inner += " where " + " and ".join(inner_conds)
        head_fields.append("inner: (%s)" % inner)

    text = "select [%s] from %s" % (", ".join(head_fields), ", ".join(gens))
    if conds:
        text += " where " + " and ".join(conds)
    return text


def random_coql_deep(seed=0, depth=3):
    """A random COQL query with *depth* nesting levels (chain-shaped).

    Generalizes :func:`random_coql` to arbitrary depth: each level has
    one generator, an optional condition that always involves the
    level's own variable (staying inside the decidable fragment), one
    atomic head column, and — below the last level — one nested
    subquery.
    """
    rng = _rng(seed)
    relations = sorted(COQL_SCHEMA)
    counter = [0]

    def fresh(rel):
        counter[0] += 1
        return "%s%d" % (rel, counter[0])

    def path_of(variables):
        var = rng.choice(variables)
        rel = var.rstrip("0123456789")
        return "%s.%s" % (var, rng.choice(COQL_SCHEMA[rel]))

    def build(level, outer_variables):
        rel = rng.choice(relations)
        var = fresh(rel)
        variables = [var]
        conds = []
        if rng.random() < 0.7:
            left = path_of(variables)  # involves the level's own variable
            if level > 0 and outer_variables and rng.random() < 0.6:
                right = path_of(outer_variables)
            elif rng.random() < 0.5:
                right = path_of(variables)
            else:
                right = str(rng.randrange(2))
            if left != right:
                conds.append("%s = %s" % (left, right))
        head_fields = ["v%d: %s" % (level, path_of(variables))]
        if level + 1 < depth:
            inner = build(level + 1, variables + list(outer_variables))
            head_fields.append("inner%d: (%s)" % (level, inner))
        text = "select [%s] from %s in %s" % (
            ", ".join(head_fields),
            var,
            rel,
        )
        if conds:
            text += " where " + " and ".join(conds)
        return text

    return build(0, [])
