"""A seedable workload simulator driving the semantic cache.

:class:`WorkloadSimulator` replays a Zipf-distributed query stream
drawn from one of the named scenarios (:mod:`repro.workloads.scenarios`)
against a :class:`repro.semcache.SemanticCache`, recording hit-rate and
latency trajectories.  The query pool mixes the scenario's named
queries with mechanically derived full projections and equality
refinements (constants sampled from the generated database itself, so
refinements are non-vacuous), which is what gives the semantic layer
something to do: refinements of an admitted query are served through
residual plans rather than re-evaluated.

Every source of randomness flows from the single *seed* (pool
shuffling, Zipf draws, churn coin-flips, refinement constants), so a
``(scenario, steps, seed, scale, zipf_s, churn, max_views)`` tuple
pins the full trajectory — the differential-oracle tests rely on this.

With ``oracle=True``, every cache-served answer (``exact`` and
``residual`` alike) is compared against a direct
:func:`repro.coql.eval.evaluate_coql` on the base database; any
mismatch is recorded with the query, serving view, and verdict — the
workload-scale soundness check for the serving rules.
"""

import time

from repro.coql.eval import evaluate_coql

__all__ = ["WorkloadSimulator", "oracle_mismatch"]


def oracle_mismatch(query, answer, database, engine=None):
    """Compare a cache answer against direct evaluation.

    :param query: the COQL text (or Expr) that produced *answer*.
    :param answer: a :class:`repro.semcache.CacheAnswer`.
    :param database: the base database the cache serves.
    :returns: None when the served value equals the directly evaluated
        one; otherwise a dict with ``query``, ``view``, ``verdict``,
        ``expected``, and ``got`` entries (the mismatch dossier the
        differential tests dump).
    """
    if isinstance(query, str):
        if engine is not None:
            query_ast = engine.pipeline().parse(query)
        else:
            from repro.coql.parser import parse_coql

            query_ast = parse_coql(query)
    else:
        query_ast = query
    expected = evaluate_coql(query_ast, database)
    if expected == answer.value:
        return None
    return {
        "query": query if isinstance(query, str) else repr(query),
        "view": answer.view,
        "verdict": answer.classification,
        "source": answer.source,
        "expected": repr(expected),
        "got": repr(answer.value),
    }


class WorkloadSimulator:
    """Drive a :class:`~repro.semcache.SemanticCache` with a seeded
    Zipf workload over one scenario.

    :param scenario: a :class:`repro.workloads.Scenario` (its
        *default_seed* seeds the database unless *seed* overrides both).
    :param steps: number of lookups to replay.
    :param seed: master seed for the stream (database generation uses
        it too, keeping one knob on the CLI).
    :param scale: database scale factor.
    :param zipf_s: Zipf exponent for query popularity (rank-weighted
        ``1/(rank+1)**s``); larger = hotter head.
    :param churn: per-step probability of evicting one random unpinned
        view (catalog churn; stresses re-admission).
    :param max_views: the cache's admission budget.
    :param oracle: compare every served answer against direct
        evaluation (slower; records mismatches).
    :param engine, store, jobs, timeout_s: forwarded to the cache.
    """

    def __init__(self, scenario, steps=200, seed=0, scale=1, zipf_s=1.1,
                 churn=0.0, max_views=32, oracle=False, engine=None,
                 store=None, jobs=None, timeout_s=None):
        import random

        from repro.semcache import SemanticCache

        self._scenario = scenario
        self._steps = steps
        self._seed = seed
        self._zipf_s = zipf_s
        self._churn = churn
        self._oracle = oracle
        self._rng = random.Random(seed)
        self._database = scenario.database(scale=scale, seed=seed)
        self._cache = SemanticCache(
            scenario.schema, self._database, engine=engine, store=store,
            max_views=max_views, jobs=jobs, timeout_s=timeout_s,
        )
        self._pool = self._build_pool()
        self._weights = [
            1.0 / (rank + 1) ** zipf_s for rank in range(len(self._pool))
        ]
        self.trajectory = []
        self.latencies_ms = []
        self.mismatches = []
        self.churn_evictions = 0

    @property
    def cache(self):
        return self._cache

    @property
    def database(self):
        return self._database

    def pool(self):
        """The ``(name, query text)`` pool, popularity rank order."""
        return tuple(self._pool)

    # -- pool construction ---------------------------------------------

    def _build_pool(self):
        """Named queries + full projections + sampled refinements,
        shuffled once so popularity ranks differ across seeds."""
        pool = [
            (name, text) for name, text in sorted(
                self._scenario.queries.items()
            )
        ]
        for relation in sorted(self._scenario.schema):
            attrs = self._scenario.schema[relation]
            projection = "select [%s] from x in %s" % (
                ", ".join("%s: x.%s" % (a, a) for a in attrs), relation,
            )
            pool.append(("%s_all" % relation, projection))
            pool.extend(self._refinements(relation, attrs, projection))
        self._rng.shuffle(pool)
        return pool

    def _refinements(self, relation, attrs, projection):
        """Equality refinements of the full projection, with constants
        sampled from the live database so the filters select rows."""
        if relation not in self._database:
            return []
        rows = list(self._database[relation])
        if not rows:
            return []
        out = []
        for attr in attrs:
            row = self._rng.choice(rows)
            value = row[attr]
            if isinstance(value, str):
                literal = '"%s"' % value
            else:
                literal = repr(value)
            out.append((
                "%s_%s_eq" % (relation, attr),
                "%s where x.%s = %s" % (projection, attr, literal),
            ))
        return out

    # -- the replay loop -----------------------------------------------

    def step(self):
        """Replay one lookup; returns ``(query name, CacheAnswer)``."""
        name, text = self._rng.choices(self._pool, weights=self._weights)[0]
        start = time.perf_counter()
        answer = self._cache.lookup(text)
        self.latencies_ms.append((time.perf_counter() - start) * 1e3)
        self.trajectory.append({
            "step": len(self.trajectory),
            "query": name,
            "source": answer.source,
            "view": answer.view,
        })
        if self._oracle and answer.hit:
            mismatch = oracle_mismatch(
                text, answer, self._database, engine=self._cache.engine()
            )
            if mismatch is not None:
                mismatch["step"] = len(self.trajectory) - 1
                mismatch["query_name"] = name
                self.mismatches.append(mismatch)
        if self._churn and self._rng.random() < self._churn:
            victims = [
                vname for vname in self._cache.views()
                if not self._cache.view(vname).pinned
            ]
            if victims:
                self._cache.evict(self._rng.choice(victims))
                self.churn_evictions += 1
        return name, answer

    def run(self):
        """Replay the full *steps* stream; returns :meth:`summary`."""
        for __ in range(self._steps):
            self.step()
        return self.summary()

    # -- reporting ------------------------------------------------------

    @staticmethod
    def _percentile(samples, q):
        if not samples:
            return 0.0
        ordered = sorted(samples)
        index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
        return ordered[index]

    def summary(self):
        """A JSON-safe summary of the replay so far.

        ``warm_hit_rate`` covers the second half of the stream — the
        steady-state figure the benchmark seed gates on.  The
        ``trajectory`` entries carry no latencies, so the summary minus
        ``p50_ms``/``p99_ms`` is fully deterministic for a seed.
        """
        steps = len(self.trajectory)
        sources = {"exact": 0, "residual": 0, "miss": 0}
        for entry in self.trajectory:
            sources[entry["source"]] += 1
        hits = sources["exact"] + sources["residual"]
        warm = self.trajectory[steps // 2:]
        warm_hits = sum(1 for e in warm if e["source"] != "miss")
        counters = self._cache.counters
        return {
            "scenario": self._scenario.name,
            "steps": steps,
            "seed": self._seed,
            "zipf_s": self._zipf_s,
            "churn": self._churn,
            "pool": len(self._pool),
            "sources": sources,
            "hit_rate": hits / steps if steps else 0.0,
            "warm_hit_rate": warm_hits / len(warm) if warm else 0.0,
            "p50_ms": self._percentile(self.latencies_ms, 0.50),
            "p99_ms": self._percentile(self.latencies_ms, 0.99),
            "admitted": counters["admitted"],
            "evicted": counters["evicted"],
            "prefetch_hints": counters["prefetch_hints"],
            "churn_evictions": self.churn_evictions,
            "views": len(self._cache.views()),
            "mismatches": list(self.mismatches),
            "trajectory": list(self.trajectory),
        }
