"""Workload generators: random databases and query families.

Used by the property tests (randomized cross-validation of the decision
procedures against the brute-force semantic checks) and by the benchmark
harness (scaling families: chains, stars, and random queries).
"""

from repro.workloads.generators import (
    random_flat_database,
    random_cq,
    random_grouping_query,
    chain_query,
    star_query,
    chain_grouping_query,
    random_coql,
    random_coql_deep,
    COQL_SCHEMA,
)
from repro.workloads.scenarios import (
    SCENARIOS,
    Scenario,
    company_scenario,
    orders_scenario,
    scenario_by_name,
)
from repro.workloads.simulator import WorkloadSimulator, oracle_mismatch

__all__ = [
    "random_flat_database",
    "random_cq",
    "random_grouping_query",
    "chain_query",
    "star_query",
    "chain_grouping_query",
    "random_coql",
    "random_coql_deep",
    "COQL_SCHEMA",
    "SCENARIOS",
    "Scenario",
    "WorkloadSimulator",
    "company_scenario",
    "oracle_mismatch",
    "orders_scenario",
    "scenario_by_name",
]
