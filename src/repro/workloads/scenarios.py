"""Named realistic scenarios: schemas, generators, and query sets.

Used by the examples and benchmarks so that workloads read like the
database settings the paper's introduction has in mind (OQL-era object
databases: departments with employees, customers with orders) rather
than synthetic r/s soup.
"""

import random

from repro.errors import ReproError
from repro.objects.database import Database
from repro.objects.types import ATOM, RecordType


def _row_types(schema):
    """Flat-schema row types for :meth:`Database.from_dict`, so a
    generator seed that leaves some relation empty still yields a
    well-typed database."""
    return {
        name: RecordType({attr: ATOM for attr in attrs})
        for name, attrs in schema.items()
    }

__all__ = [
    "Scenario",
    "SCENARIOS",
    "company_scenario",
    "orders_scenario",
    "scenario_by_name",
]


class Scenario:
    """A schema, a database generator, and named queries.

    *default_seed* is the generator seed used when :meth:`database` is
    called without one — threaded from the scenario constructors so that
    CLI ``--seed`` reaches every derived artifact.
    """

    __slots__ = ("name", "schema", "queries", "_generator", "default_seed")

    def __init__(self, name, schema, queries, generator, default_seed=0):
        self.name = name
        self.schema = schema
        self.queries = dict(queries)
        self._generator = generator
        self.default_seed = default_seed

    def database(self, scale=1, seed=None):
        """A reproducible database at the given scale factor.

        Falls back to the scenario's *default_seed* when *seed* is
        omitted, so ``company_scenario(seed=7).database()`` and
        ``company_scenario().database(seed=7)`` agree.
        """
        if seed is None:
            seed = self.default_seed
        return self._generator(scale, seed)

    def containment_matrix(self, engine=None, witnesses=None, jobs=None,
                           timeout_s=None):
        """Pairwise containment of the scenario's named queries.

        :param engine: a :class:`repro.engine.ContainmentEngine` (or
            :class:`repro.engine.ParallelContainmentEngine`) to reuse
            (a fresh one is created otherwise).
        :param jobs: when given (> 1), shard across a worker pool via
            :class:`repro.engine.ParallelContainmentEngine`; *timeout_s*
            bounds each check and timed-out entries appear as
            :data:`repro.engine.UNDECIDED`.
        :returns: ``(names, matrix)`` where ``matrix[i][j]`` is True iff
            ``queries[names[j]] ⊑ queries[names[i]]``, and None when the
            pair is incomparable or outside the decidable fragment.
        """
        names = tuple(sorted(self.queries))
        queries = [self.queries[name] for name in names]
        if jobs is not None or timeout_s is not None:
            from repro.engine import ParallelContainmentEngine

            with ParallelContainmentEngine(
                jobs=jobs, timeout_s=timeout_s, engine=engine
            ) as parallel:
                return names, parallel.pairwise_matrix(
                    queries, self.schema, witnesses=witnesses
                )
        if engine is None:
            from repro.engine import ContainmentEngine

            engine = ContainmentEngine()
        matrix = engine.pairwise_matrix(
            queries, self.schema, witnesses=witnesses
        )
        return names, matrix

    def __repr__(self):
        return "Scenario(%s, %d queries)" % (self.name, len(self.queries))


def company_scenario(seed=0):
    """Departments and employees (the OQL classic).

    Queries: group employees under their department; several
    reformulations with known relationships (equivalent, contained,
    incomparable) for exercising the deciders.  *seed* becomes the
    scenario's :attr:`~Scenario.default_seed`.
    """
    schema = {
        "dept": ("dname", "floor"),
        "emp": ("name", "dep", "salary_band"),
    }

    def generate(scale, seed):
        rng = random.Random(seed)
        departments = [
            {"dname": "d%d" % i, "floor": rng.randrange(1, 4)}
            for i in range(2 * scale)
        ]
        employees = [
            {
                "name": "e%d" % i,
                "dep": "d%d" % rng.randrange(2 * scale + 1),  # some dangling
                "salary_band": rng.randrange(3),
            }
            for i in range(6 * scale)
        ]
        return Database.from_dict(
            {"dept": departments, "emp": employees}, schema=_row_types(schema)
        )

    queries = {
        "staff_by_dept": (
            "select [d: x.dname,"
            " staff: select [n: y.name] from y in emp where y.dep = x.dname]"
            " from x in dept"
        ),
        "staff_by_dept_renamed": (
            "select [d: dd.dname,"
            " staff: select [n: ee.name] from ee in emp where ee.dep = dd.dname]"
            " from dd in dept"
        ),
        "staffed_depts_only": (
            "select [d: x.dname,"
            " staff: select [n: y.name] from y in emp where y.dep = x.dname]"
            " from x in dept, w in emp where w.dep = x.dname"
        ),
        "all_staff_under_dept": (
            "select [d: x.dname, staff: select [n: y.name] from y in emp]"
            " from x in dept"
        ),
    }
    return Scenario("company", schema, queries, generate, default_seed=seed)


def orders_scenario(seed=0):
    """Customers, orders, and a gold-tier side table.

    *seed* becomes the scenario's :attr:`~Scenario.default_seed`.
    """
    schema = {
        "orders": ("cust", "item"),
        "catalog": ("item", "category"),
        "gold": ("cust",),
    }

    def generate(scale, seed):
        rng = random.Random(seed)
        customers = ["c%d" % i for i in range(3 * scale)]
        items = ["i%d" % i for i in range(4 * scale)]
        orders = [
            {"cust": rng.choice(customers), "item": rng.choice(items)}
            for __ in range(8 * scale)
        ]
        catalog = [
            {"item": item, "category": "cat%d" % rng.randrange(3)}
            for item in items
            if rng.random() < 0.8
        ]
        gold = [{"cust": c} for c in customers if rng.random() < 0.4]
        return Database.from_dict(
            {"orders": orders, "catalog": catalog, "gold": gold},
            schema=_row_types(schema),
        )

    queries = {
        "basket_per_customer": (
            "select [c: o.cust,"
            " items: select [i: p.item] from p in orders where p.cust = o.cust]"
            " from o in orders"
        ),
        "gold_baskets": (
            "select [c: o.cust,"
            " items: select [i: p.item] from p in orders where p.cust = o.cust]"
            " from o in orders, g in gold where g.cust = o.cust"
        ),
        "catalogued_baskets": (
            "select [c: o.cust,"
            " items: select [i: p.item] from p in orders, k in catalog"
            " where p.cust = o.cust and k.item = p.item]"
            " from o in orders"
        ),
    }
    return Scenario("orders", schema, queries, generate, default_seed=seed)


SCENARIOS = {
    "company": company_scenario,
    "orders": orders_scenario,
}


def scenario_by_name(name, seed=0):
    """Construct a registered scenario by name (CLI entry point).

    :raises ReproError: on an unknown name, listing the known ones.
    """
    try:
        factory = SCENARIOS[name]
    except KeyError:
        raise ReproError(
            "unknown scenario %r (known: %s)"
            % (name, ", ".join(sorted(SCENARIOS)))
        ) from None
    return factory(seed=seed)
