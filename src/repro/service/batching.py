"""Micro-batching of concurrent containment requests.

At service load, many clients ask ``contains`` at once.  Deciding each
request alone wastes the batch machinery the engine already has:
:meth:`contains_many` amortizes chunk dispatch and lets shards share
compiled targets, and the content-addressed store means concurrent
requests over overlapping queries hit each other's artifacts.

:class:`MicroBatcher` coalesces requests that arrive within one batching
*window* (a few milliseconds) into one ``contains_many`` call per
compatible *group* — requests can only share a batch when their schema
and decision knobs (witnesses, method, timeout) agree, so the group key
is exactly that tuple.  The first request of a group opens the window;
the batch is dispatched when the window closes or when the group
reaches *max_batch*, whichever comes first.  A lone request therefore
pays at most the window in added latency, and a burst pays one engine
dispatch for the whole group.

The batcher is event-loop-confined (no locks): ``submit`` must be
awaited on the loop that created the batcher, and the sync *run_batch*
callable is pushed to *executor* so the loop never blocks on a
decision.
"""

import asyncio

__all__ = ["MicroBatcher"]


class _Bucket:
    __slots__ = ("group", "entries", "timer")

    def __init__(self, group):
        self.group = group
        self.entries = []
        self.timer = None


class MicroBatcher:
    """Coalesce awaitable requests into batched synchronous calls.

    :param run_batch: sync callable ``(group, items) -> results`` (one
        result per item, in order) — run on *executor*.
    :param executor: the executor decisions run on (None = the loop's
        default).  The service passes a single-threaded executor so
        engine access is serialized.
    :param window_s: how long the first request of a group waits for
        company before the batch is dispatched.
    :param max_batch: dispatch immediately once a group holds this many
        requests.
    """

    def __init__(self, run_batch, executor=None, window_s=0.002,
                 max_batch=64):
        self._run_batch = run_batch
        self._executor = executor
        self._window_s = max(0.0, window_s)
        self._max_batch = max(1, max_batch)
        self._pending = {}
        self.batches = 0
        self.batched_items = 0
        self.largest_batch = 0

    async def submit(self, key, group, item):
        """The result of *item*, decided inside its group's next batch.

        *key* must hash-identify *group* (requests with equal keys are
        batched together and handed one *group* value).
        """
        loop = asyncio.get_running_loop()
        future = loop.create_future()
        bucket = self._pending.get(key)
        if bucket is None:
            bucket = self._pending[key] = _Bucket(group)
            bucket.timer = loop.create_task(self._close_window(key))
        bucket.entries.append((item, future))
        if len(bucket.entries) >= self._max_batch:
            self._dispatch(key)
        return await future

    async def _close_window(self, key):
        if self._window_s:
            await asyncio.sleep(self._window_s)
        else:
            # Even a zero window yields once, so requests already queued
            # on the loop join the batch.
            await asyncio.sleep(0)
        self._dispatch(key)

    def _dispatch(self, key):
        bucket = self._pending.pop(key, None)
        if bucket is None:  # window closed and max_batch raced: done
            return
        if bucket.timer is not None and bucket.timer is not (
            asyncio.current_task()
        ):
            bucket.timer.cancel()
        self.batches += 1
        self.batched_items += len(bucket.entries)
        self.largest_batch = max(self.largest_batch, len(bucket.entries))
        asyncio.get_running_loop().create_task(self._run(bucket))

    async def _run(self, bucket):
        loop = asyncio.get_running_loop()
        items = [item for item, __ in bucket.entries]
        try:
            results = await loop.run_in_executor(
                self._executor, self._run_batch, bucket.group, items
            )
        except Exception as exc:  # engine-level failure: fail the batch
            for __, future in bucket.entries:
                if not future.done():
                    future.set_exception(exc)
            return
        for (__, future), result in zip(bucket.entries, results):
            if not future.done():
                future.set_result(result)

    async def drain(self):
        """Dispatch every open window now and wait for loop turnover
        (tests and shutdown; results still resolve via the futures)."""
        for key in list(self._pending):
            self._dispatch(key)
        await asyncio.sleep(0)
