"""Containment-as-a-service: the asyncio JSON-over-HTTP server.

The paper's decision procedure amortizes beautifully — prepared
encodings, obligation verdicts, and compiled simulation targets are all
content-addressed — but only if checks outlive a process.
:class:`ContainmentService` is the long-running home for them: an
asyncio HTTP server whose engine sits on the persistent cross-process
tier (:class:`repro.pipeline.persist.TieredStore`), so a restarted
server answers its first requests warm from disk, and whose concurrent
``/v1/contain`` requests are micro-batched
(:class:`repro.service.batching.MicroBatcher`) into the engine's
``contains_many`` batch path.

Endpoints (bodies and responses are JSON; schemas are either a
``{"rel": ["attr", ...]}`` object or the CLI's ``"r:a,b;s:k"`` string):

=======  =============  ====================================================
method   path           body → response
=======  =============  ====================================================
POST     /v1/contain    ``{sup, sub, schema, timeout_s?, witnesses?,
                        method?, ordering?}`` →
                        ``{"verdict": true|false|"undecided"}``
POST     /v1/equiv      ``{q1, q2, schema, weak?, witnesses?, method?,
                        ordering?}`` → ``{"verdict": ...}``
POST     /v1/matrix     ``{queries, schema, timeout_s?, ...}`` →
                        ``{"matrix": [[true|false|null|"undecided", ...]]}``
POST     /v1/lint       ``{query | queries, schema, select?, ignore?}`` →
                        the CLI's JSON lint report shape
POST     /v1/classify   ``{query, views: {name: text}, schema,
                        timeout_s?, witnesses?, method?}`` →
                        ``{"classifications": {name: "equivalent" |
                        "subsuming" | "contained" | "irrelevant"}}``
POST     /v1/flush      ``{}`` → ``{"flushed": n}`` (persist write-backs)
GET      /v1/stats      service counters + engine stats + store accounting
GET      /healthz       ``{"ok": true}``
=======  =============  ====================================================

Status codes: 200 for every decided request (including ``"undecided"``
timeouts), 400 for malformed requests, 404 unknown path, 413 oversized
body, 422 for domain errors (incomparable queries, unsupported
fragment), 500 for unexpected failures.

Deadline semantics: a request's ``timeout_s`` rides the existing
timeout machinery — with ``jobs >= 2`` the engine's pool workers
enforce it by ``SIGALRM``; the service additionally bounds the
*response* with an asyncio deadline (``timeout_s`` plus the batching
window plus a grace), so a client always hears ``"undecided"`` within a
bounded wall time even when in-process enforcement is unavailable.
Batching: requests may only share an engine batch when their schema and
decision knobs agree, so the batch group key is the content fingerprint
of exactly that tuple.  The optional ``ordering`` knob (one of
``repro.cq.propagation.ORDERINGS``) selects the homomorphism-search
kernel per request — unknown values are a 400, mirroring the CLI's
exit-2 usage error — and is part of the batch group key.
"""

import asyncio
import json
import threading
from concurrent.futures import ThreadPoolExecutor
from time import monotonic

from contextlib import nullcontext

from repro.errors import ReproError
from repro.cq.propagation import ORDERINGS, use_ordering
from repro.engine import ParallelContainmentEngine, UNDECIDED
from repro.engine.parallel import Undecided
from repro.pipeline.fingerprint import artifact_key
from repro.service.batching import MicroBatcher

__all__ = ["ContainmentService", "BackgroundService", "DEFAULT_PORT"]

DEFAULT_PORT = 8977

#: Upper bound on request bodies: queries are text, not data.
MAX_BODY_BYTES = 8 * 1024 * 1024


class _HttpError(Exception):
    def __init__(self, status, message):
        super().__init__(message)
        self.status = status
        self.message = message


def _parse_schema_payload(value):
    """A request's schema field → ``{relation: (attr, ...)}``."""
    from repro.cli import _parse_schema

    if isinstance(value, str):
        return _parse_schema(value)
    if isinstance(value, dict) and value:
        schema = {}
        for name, attrs in value.items():
            if not isinstance(name, str) or not isinstance(
                attrs, (list, tuple)
            ):
                raise _HttpError(400, "schema must map names to attr lists")
            schema[name] = tuple(str(a) for a in attrs)
        return schema
    raise _HttpError(400, "missing or invalid 'schema'")


def _verdict_payload(verdict):
    """An engine verdict → its JSON value."""
    if isinstance(verdict, Undecided):
        return "undecided"
    if isinstance(verdict, Exception):
        return {
            "error": {
                "type": type(verdict).__name__,
                "message": str(verdict),
            }
        }
    return verdict  # True / False / None (incomparable matrix cell)


class ContainmentService:
    """The asyncio containment service.

    :param host, port: bind address (``port=0`` = ephemeral; the bound
        port is on :attr:`port` after :meth:`start`).
    :param store_path: SQLite path for the persistent tier; the engine
        (and its pool workers, with ``jobs >= 2``) warm-start from it
        and write back to it.  None = memory-only caching.
    :param jobs: engine worker processes (1 = in-process decisions).
    :param timeout_s: default per-check deadline applied when a request
        does not send its own ``timeout_s``.
    :param batch_window_s, max_batch: micro-batching knobs (see
        :class:`MicroBatcher`).
    :param deadline_grace_s: slack added to a request's ``timeout_s``
        before the service gives up waiting and answers
        ``"undecided"``.
    :param default_schema: schema used by requests that omit one.
    :param preload: warm the memory tier from disk at startup.
    :param constraints: tuple of
        :class:`repro.constraints.InclusionDependency` declarations
        every check served holds under (the engine default; the chase
        saturates sub-side witnesses before each simulation search).
    """

    def __init__(self, host="127.0.0.1", port=DEFAULT_PORT, store_path=None,
                 jobs=1, timeout_s=None, batch_window_s=0.002, max_batch=64,
                 deadline_grace_s=1.0, default_schema=None, preload=False,
                 witnesses=None, method="certificate", constraints=()):
        self.host = host
        self.port = port
        self._store_path = store_path
        self._engine = ParallelContainmentEngine(
            jobs=jobs, timeout_s=timeout_s, witnesses=witnesses,
            method=method, store_path=store_path,
            constraints=tuple(constraints),
        )
        self._default_timeout_s = timeout_s
        self._batch_window_s = batch_window_s
        self._deadline_grace_s = deadline_grace_s
        self._default_schema = default_schema
        # One worker thread serializes every engine call: the engine's
        # own parallelism lives in its process pool, and a single entry
        # thread keeps the store and stats free of data races.
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-engine"
        )
        self._batcher = MicroBatcher(
            self._decide_batch, executor=self._executor,
            window_s=batch_window_s, max_batch=max_batch,
        )
        self._server = None
        self._requests = {}
        self._deadline_misses = 0
        self._started_at = None
        self.preloaded = 0
        if preload:
            self.preloaded = self._preload()

    # -- engine plumbing (runs on the executor thread) -----------------

    def engine(self):
        """The underlying :class:`ParallelContainmentEngine`."""
        return self._engine

    def store(self):
        """The engine's artifact store (tiered when *store_path* set)."""
        return self._engine.engine().store()

    def _preload(self):
        store = self.store()
        preload = getattr(store, "preload", None)
        return preload() if preload is not None else 0

    def _flush(self):
        store = self.store()
        flush = getattr(store, "flush", None)
        return flush() if flush is not None else 0

    def _decide_batch(self, group, pairs):
        """One micro-batch → one ``contains_many`` (executor thread)."""
        schema_items, witnesses, method, timeout_s, ordering = group
        verdicts = self._engine.contains_many(
            pairs, dict(schema_items), witnesses=witnesses, method=method,
            timeout_s=timeout_s, on_error="capture", on_timeout="undecided",
            ordering=ordering,
        )
        self._flush()
        return verdicts

    # -- request handling ----------------------------------------------

    def _tally(self, endpoint):
        self._requests[endpoint] = self._requests.get(endpoint, 0) + 1

    def _schema_of(self, body):
        value = body.get("schema")
        if value is None:
            if self._default_schema is None:
                raise _HttpError(
                    400, "no 'schema' in request and no server default"
                )
            return self._default_schema
        return _parse_schema_payload(value)

    @staticmethod
    def _query_field(body, name):
        value = body.get(name)
        if not isinstance(value, str) or not value.strip():
            raise _HttpError(400, "missing or invalid %r" % (name,))
        return value

    def _knobs_of(self, body):
        witnesses = body.get("witnesses")
        if witnesses is not None and not isinstance(witnesses, int):
            raise _HttpError(400, "'witnesses' must be an integer")
        method = body.get("method", "certificate")
        if method not in ("certificate", "canonical"):
            raise _HttpError(400, "unknown method %r" % (method,))
        timeout_s = body.get("timeout_s", self._default_timeout_s)
        if timeout_s is not None and not isinstance(timeout_s, (int, float)):
            raise _HttpError(400, "'timeout_s' must be a number")
        ordering = body.get("ordering")
        if ordering is not None and ordering not in ORDERINGS:
            raise _HttpError(
                400,
                "unknown ordering %r (expected one of %s)"
                % (ordering, ", ".join(ORDERINGS)),
            )
        return witnesses, method, timeout_s, ordering

    async def _with_deadline(self, awaitable, timeout_s):
        """Bound the response wall time; ``UNDECIDED`` on overrun.

        The work itself is shielded — a batch keeps running and its
        artifacts (and the other requests sharing it) still land; only
        this response stops waiting.
        """
        task = asyncio.ensure_future(awaitable)
        if timeout_s is None:
            return await task, False
        budget = timeout_s + self._batch_window_s + self._deadline_grace_s
        try:
            return await asyncio.wait_for(asyncio.shield(task), budget), False
        except asyncio.TimeoutError:
            self._deadline_misses += 1
            task.add_done_callback(lambda t: t.exception())  # not abandoned
            return UNDECIDED, True

    async def _handle_contain(self, body):
        schema = self._schema_of(body)
        sup = self._query_field(body, "sup")
        sub = self._query_field(body, "sub")
        witnesses, method, timeout_s, ordering = self._knobs_of(body)
        schema_items = tuple(sorted(schema.items()))
        group = (schema_items, witnesses, method, timeout_s, ordering)
        key = artifact_key("service_batch", *group)
        verdict, missed = await self._with_deadline(
            self._batcher.submit(key, group, (sup, sub)), timeout_s
        )
        payload = _verdict_payload(verdict)
        if isinstance(payload, dict):  # a captured domain error
            return 422, payload
        response = {"verdict": payload}
        if missed:
            response["deadline_exceeded"] = True
        return 200, response

    async def _handle_equiv(self, body):
        schema = self._schema_of(body)
        q1 = self._query_field(body, "q1")
        q2 = self._query_field(body, "q2")
        witnesses, method, timeout_s, ordering = self._knobs_of(body)
        weak = bool(body.get("weak", False))
        engine = self._engine.engine()
        decide = (
            engine.weakly_equivalent if weak else engine.equivalent
        )
        loop = asyncio.get_running_loop()
        swap = use_ordering(ordering) if ordering else nullcontext()

        def run():
            with swap:
                verdict = decide(q1, q2, schema, witnesses=witnesses,
                                 method=method)
            self._flush()
            return verdict

        verdict, missed = await self._with_deadline(
            loop.run_in_executor(self._executor, run), timeout_s
        )
        response = {"verdict": _verdict_payload(verdict), "weak": weak}
        if missed:
            response["deadline_exceeded"] = True
        return 200, response

    async def _handle_matrix(self, body):
        schema = self._schema_of(body)
        queries = body.get("queries")
        if (
            not isinstance(queries, list)
            or len(queries) < 1
            or not all(isinstance(q, str) for q in queries)
        ):
            raise _HttpError(400, "'queries' must be a list of strings")
        witnesses, method, timeout_s, ordering = self._knobs_of(body)
        loop = asyncio.get_running_loop()

        def run():
            matrix = self._engine.pairwise_matrix(
                queries, schema, witnesses=witnesses, method=method,
                timeout_s=timeout_s, ordering=ordering,
            )
            self._flush()
            return matrix

        # The matrix pays N^2 checks; its deadline scales with the work.
        budget = None if timeout_s is None else timeout_s * len(queries) ** 2
        matrix, missed = await self._with_deadline(
            loop.run_in_executor(self._executor, run), budget
        )
        if missed:
            return 200, {"matrix": None, "deadline_exceeded": True}
        return 200, {
            "matrix": [[_verdict_payload(v) for v in row] for row in matrix]
        }

    async def _handle_classify(self, body):
        schema = self._schema_of(body)
        query = self._query_field(body, "query")
        views = body.get("views")
        if (
            not isinstance(views, dict)
            or not views
            or not all(
                isinstance(k, str) and isinstance(v, str)
                for k, v in views.items()
            )
        ):
            raise _HttpError(
                400, "'views' must be a non-empty object of name -> query"
            )
        witnesses, method, timeout_s, ordering = self._knobs_of(body)
        names = sorted(views)
        loop = asyncio.get_running_loop()

        def run():
            labels = self._engine.classify_many(
                query, [views[name] for name in names], schema,
                witnesses=witnesses, method=method, timeout_s=timeout_s,
                on_timeout="undecided", ordering=ordering,
            )
            self._flush()
            return labels

        # Each view costs two containment checks; scale the deadline.
        budget = None if timeout_s is None else timeout_s * 2 * len(names)
        labels, missed = await self._with_deadline(
            loop.run_in_executor(self._executor, run), budget
        )
        if missed:
            return 200, {"classifications": None, "deadline_exceeded": True}
        return 200, {"classifications": dict(zip(names, labels))}

    async def _handle_lint(self, body):
        from repro.analysis import AnalysisConfig, analyze

        schema = self._schema_of(body)
        if "queries" in body:
            queries = body["queries"]
            if not isinstance(queries, list) or not all(
                isinstance(q, str) for q in queries
            ):
                raise _HttpError(400, "'queries' must be a list of strings")
        else:
            queries = [self._query_field(body, "query")]
        config = AnalysisConfig(expensive=bool(body.get("expensive", False)))
        select, ignore = body.get("select"), body.get("ignore")
        for name, codes in (("select", select), ("ignore", ignore)):
            if codes is not None and (
                not isinstance(codes, list)
                or not all(isinstance(c, str) for c in codes)
            ):
                raise _HttpError(400, "%r must be a list of rule codes" % name)
        engine = self._engine.engine()
        loop = asyncio.get_running_loop()

        def run():
            results = []
            for query in queries:
                diagnostics = analyze(
                    query, schema, engine=engine, config=config,
                    select=select, ignore=ignore,
                )
                results.append([d.as_dict() for d in diagnostics])
            self._flush()
            return results

        results = await loop.run_in_executor(self._executor, run)
        counts = {"error": 0, "warning": 0, "info": 0}
        targets = []
        for query, diagnostics in zip(queries, results):
            for diagnostic in diagnostics:
                counts[diagnostic["severity"]] += 1
            targets.append({"target": query, "diagnostics": diagnostics})
        return 200, {
            "version": 1,
            "targets": targets,
            "summary": {
                "targets": len(targets),
                "errors": counts["error"],
                "warnings": counts["warning"],
                "infos": counts["info"],
            },
        }

    async def _handle_flush(self, body):
        loop = asyncio.get_running_loop()
        flushed = await loop.run_in_executor(self._executor, self._flush)
        return 200, {"flushed": flushed}

    def _store_stats(self):
        store = self.store()
        stats = {
            "sizes": store.sizes(),
            "counters": store.counters(),
            "hit_rates": store.hit_rates(),
        }
        disk = getattr(store, "disk", None)
        if disk is not None:
            stats["persistent"] = {
                "path": disk.path,
                "broken": disk.broken,
                "sizes": disk.sizes(),
                "counters": disk.counters(),
                "hit_rates": disk.hit_rates(),
            }
            stats["promotions"] = store.promotions
            stats["flushes"] = store.flushes
        return stats

    async def _handle_stats(self):
        uptime = (
            monotonic() - self._started_at if self._started_at else 0.0
        )
        return 200, {
            "service": {
                "uptime_s": round(uptime, 3),
                "requests": dict(sorted(self._requests.items())),
                "deadline_misses": self._deadline_misses,
                "batches": self._batcher.batches,
                "batched_requests": self._batcher.batched_items,
                "largest_batch": self._batcher.largest_batch,
                "preloaded": self.preloaded,
            },
            "engine": self._engine.stats().as_dict(),
            "store": self._store_stats(),
        }

    _ROUTES = {
        ("POST", "/v1/contain"): "_handle_contain",
        ("POST", "/v1/equiv"): "_handle_equiv",
        ("POST", "/v1/matrix"): "_handle_matrix",
        ("POST", "/v1/lint"): "_handle_lint",
        ("POST", "/v1/classify"): "_handle_classify",
        ("POST", "/v1/flush"): "_handle_flush",
    }

    async def _dispatch(self, method, target, body_bytes):
        if method == "GET" and target == "/healthz":
            return 200, {"ok": True}
        if method == "GET" and target == "/v1/stats":
            self._tally("stats")
            return await self._handle_stats()
        handler = self._ROUTES.get((method, target))
        if handler is None:
            raise _HttpError(404, "no route %s %s" % (method, target))
        try:
            body = json.loads(body_bytes or b"{}")
        except ValueError:
            raise _HttpError(400, "request body is not valid JSON")
        if not isinstance(body, dict):
            raise _HttpError(400, "request body must be a JSON object")
        self._tally(target.rsplit("/", 1)[-1])
        try:
            return await getattr(self, handler)(body)
        except ReproError as exc:
            # Domain errors that escaped capture (e.g. equiv over a
            # query outside the decidable fragment).
            return 422, {
                "error": {"type": type(exc).__name__, "message": str(exc)}
            }

    # -- HTTP framing --------------------------------------------------

    @staticmethod
    async def _read_request(reader):
        try:
            line = await reader.readline()
        except (ConnectionError, asyncio.LimitOverrunError):
            return None
        if not line:
            return None
        parts = line.decode("latin-1").strip().split()
        if len(parts) != 3:
            raise _HttpError(400, "malformed request line")
        method, target, __ = parts
        headers = {}
        while True:
            line = await reader.readline()
            if line in (b"", b"\r\n", b"\n"):
                break
            name, __, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0") or "0")
        except ValueError:
            raise _HttpError(400, "bad Content-Length")
        if length > MAX_BODY_BYTES:
            raise _HttpError(413, "request body too large")
        body = b""
        if length:
            try:
                body = await reader.readexactly(length)
            except asyncio.IncompleteReadError:
                return None
        return method, target, headers, body

    @staticmethod
    def _response_bytes(status, payload, keep_alive):
        reasons = {200: "OK", 400: "Bad Request", 404: "Not Found",
                   413: "Payload Too Large", 422: "Unprocessable Entity",
                   500: "Internal Server Error"}
        body = json.dumps(payload, sort_keys=True).encode("utf-8") + b"\n"
        head = (
            "HTTP/1.1 %d %s\r\n"
            "Content-Type: application/json\r\n"
            "Content-Length: %d\r\n"
            "Connection: %s\r\n"
            "\r\n" % (
                status, reasons.get(status, "Error"), len(body),
                "keep-alive" if keep_alive else "close",
            )
        )
        return head.encode("latin-1") + body

    async def _handle_client(self, reader, writer):
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except _HttpError as exc:
                    writer.write(self._response_bytes(
                        exc.status, {"error": {"message": exc.message}}, False
                    ))
                    await writer.drain()
                    break
                if request is None:
                    break
                method, target, headers, body = request
                keep_alive = (
                    headers.get("connection", "keep-alive").lower()
                    != "close"
                )
                try:
                    status, payload = await self._dispatch(
                        method, target, body
                    )
                except _HttpError as exc:
                    status, payload = exc.status, {
                        "error": {"message": exc.message}
                    }
                except Exception as exc:  # unexpected: keep serving
                    status, payload = 500, {
                        "error": {
                            "type": type(exc).__name__, "message": str(exc)
                        }
                    }
                writer.write(
                    self._response_bytes(status, payload, keep_alive)
                )
                await writer.drain()
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    # -- lifecycle -----------------------------------------------------

    async def start(self):
        """Bind and begin serving; resolves :attr:`port` when ephemeral."""
        self._server = await asyncio.start_server(
            self._handle_client, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._started_at = monotonic()
        return self

    async def stop(self):
        """Stop serving: drain batches, flush the store, close the
        engine and its pool."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self._batcher.drain()
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(self._executor, self._flush)
        self._engine.close()
        self._executor.shutdown(wait=True)

    async def serve_forever(self):
        """:meth:`start` then serve until cancelled."""
        if self._server is None:
            await self.start()
        try:
            await self._server.serve_forever()
        finally:
            await self.stop()


class BackgroundService:
    """A service running on its own thread + event loop (tests, benches,
    and anything else that is not itself async).

    >>> with BackgroundService(store_path=path) as svc:
    ...     client = ServiceClient(svc.host, svc.port)

    Startup failures propagate from :meth:`start`; :meth:`stop` is
    idempotent and joins the thread.
    """

    def __init__(self, **service_kwargs):
        service_kwargs.setdefault("port", 0)
        self._kwargs = service_kwargs
        self._thread = None
        self._loop = None
        self._stop_event = None
        self._ready = threading.Event()
        self._failure = None
        self.service = None

    @property
    def host(self):
        return self.service.host

    @property
    def port(self):
        return self.service.port

    def _main(self):
        try:
            asyncio.run(self._amain())
        except Exception as exc:  # surfaced by start()
            self._failure = exc
            self._ready.set()

    async def _amain(self):
        service = ContainmentService(**self._kwargs)
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        await service.start()
        self.service = service
        self._ready.set()
        await self._stop_event.wait()
        await service.stop()

    def start(self, timeout=30.0):
        self._thread = threading.Thread(
            target=self._main, name="repro-service", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout):
            raise RuntimeError("service did not start within %gs" % timeout)
        if self._failure is not None:
            raise self._failure
        return self

    def stop(self, timeout=30.0):
        if self._thread is None or self._loop is None:
            return
        self._loop.call_soon_threadsafe(self._stop_event.set)
        self._thread.join(timeout)
        self._thread = None

    def __enter__(self):
        return self.start()

    def __exit__(self, *exc_info):
        self.stop()
        return False
