"""``repro.service`` — containment as a long-running service.

The persistent artifact tier (:mod:`repro.pipeline.persist`) makes
decision state outlive a process; this package makes the process itself
long-lived.  :class:`ContainmentService` is an asyncio JSON-over-HTTP
server whose engine sits on the tiered store, micro-batching concurrent
``contain`` requests (:class:`MicroBatcher`) into the engine's sharded
batch path and bounding every response with the existing deadline
machinery.  :class:`ServiceClient` is the stdlib reference client;
:class:`BackgroundService` hosts the server on a side thread for tests,
benchmarks, and synchronous embedders.

Start one from the CLI with ``repro serve --store-path …``.
"""

from repro.service.batching import MicroBatcher
from repro.service.client import ServiceClient, ServiceError
from repro.service.server import (
    BackgroundService,
    ContainmentService,
    DEFAULT_PORT,
)

__all__ = [
    "BackgroundService",
    "ContainmentService",
    "DEFAULT_PORT",
    "MicroBatcher",
    "ServiceClient",
    "ServiceError",
]
