"""A minimal stdlib client for the containment service.

:class:`ServiceClient` speaks the JSON protocol of
:class:`repro.service.server.ContainmentService` over one keep-alive
``http.client`` connection.  Verdicts come back exactly as the wire
encodes them: ``True`` / ``False``, the string ``"undecided"`` for
timed-out checks, and ``None`` for incomparable matrix cells.  Domain
errors (HTTP 4xx/5xx with an ``error`` payload) raise
:class:`ServiceError`.

The client is deliberately boring — synchronous, one socket, no
retries — because its jobs are tests, benchmarks, and scripting; it is
also the reference for what a real client must send.
"""

import json
from http.client import HTTPConnection

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(Exception):
    """An error response from the service.

    :ivar status: the HTTP status code.
    :ivar kind: the server-side exception type name (may be None for
        protocol-level errors).
    """

    def __init__(self, status, message, kind=None):
        super().__init__("[%d] %s" % (status, message))
        self.status = status
        self.kind = kind
        self.message = message


class ServiceClient:
    """A synchronous client bound to one service address.

    :param host, port: the service address.
    :param timeout_s: socket timeout for each round trip (should exceed
        the service's per-check deadline plus its grace).
    """

    def __init__(self, host="127.0.0.1", port=8977, timeout_s=60.0):
        self.host = host
        self.port = port
        self._conn = HTTPConnection(host, port, timeout=timeout_s)

    def close(self):
        self._conn.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()
        return False

    def _request(self, method, path, body=None):
        payload = None
        headers = {"Connection": "keep-alive"}
        if body is not None:
            payload = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        try:
            self._conn.request(method, path, body=payload, headers=headers)
            response = self._conn.getresponse()
            raw = response.read()
        except (ConnectionError, OSError):
            # One reconnect: the server may have closed an idle socket.
            self._conn.close()
            self._conn.request(method, path, body=payload, headers=headers)
            response = self._conn.getresponse()
            raw = response.read()
        try:
            decoded = json.loads(raw)
        except ValueError:
            raise ServiceError(response.status, "non-JSON response body")
        if response.status >= 400:
            error = decoded.get("error", {}) if isinstance(
                decoded, dict
            ) else {}
            raise ServiceError(
                response.status,
                error.get("message", "request failed"),
                kind=error.get("type"),
            )
        return decoded

    # -- endpoints -----------------------------------------------------

    def health(self):
        """True when the service answers ``/healthz``."""
        return bool(self._request("GET", "/healthz").get("ok"))

    def stats(self):
        """The service's ``/v1/stats`` payload."""
        return self._request("GET", "/v1/stats")

    def flush(self):
        """Force a persistent-tier write-back; count of rows flushed."""
        return self._request("POST", "/v1/flush", {}).get("flushed", 0)

    def contain(self, sup, sub, schema=None, **knobs):
        """``sub ⊑ sup`` → ``True`` / ``False`` / ``"undecided"``.

        *knobs* pass through to the request body: ``timeout_s``,
        ``witnesses``, ``method``.
        """
        body = {"sup": sup, "sub": sub, **knobs}
        if schema is not None:
            body["schema"] = schema
        return self._request("POST", "/v1/contain", body)["verdict"]

    def equiv(self, q1, q2, schema=None, weak=False, **knobs):
        """Equivalence (weak when *weak*) of two queries."""
        body = {"q1": q1, "q2": q2, "weak": weak, **knobs}
        if schema is not None:
            body["schema"] = schema
        return self._request("POST", "/v1/equiv", body)["verdict"]

    def matrix(self, queries, schema=None, **knobs):
        """The pairwise containment matrix of *queries*."""
        body = {"queries": list(queries), **knobs}
        if schema is not None:
            body["schema"] = schema
        return self._request("POST", "/v1/matrix", body)["matrix"]

    def classify(self, query, views, schema=None, **knobs):
        """``{view name: classification label}`` for *query* against
        *views* (a ``{name: query text}`` mapping); None when the
        service's deadline lapsed first."""
        body = {"query": query, "views": dict(views), **knobs}
        if schema is not None:
            body["schema"] = schema
        return self._request("POST", "/v1/classify", body)["classifications"]

    def lint(self, query=None, queries=None, schema=None, **knobs):
        """The lint report for one query or a batch of queries."""
        body = dict(knobs)
        if queries is not None:
            body["queries"] = list(queries)
        else:
            body["query"] = query
        if schema is not None:
            body["schema"] = schema
        return self._request("POST", "/v1/lint", body)
