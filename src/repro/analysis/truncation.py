"""COQL006 — validation of truncation patterns (kind ``truncation``).

Truncation patterns are the prefix-closed path sets the decision
procedure prunes a grouping query by, one simulation obligation per
pattern (Section 4: an element whose inner set is empty is dominated by
any element with a matching atomic part).  A malformed pattern —
missing root, unknown path, non-prefix-closed set — used to be dropped
silently by :meth:`GroupingQuery.truncate`, which turned caller-side
mismatches into wrong containment obligations; today ``truncate``
raises, and this rule reports *all* the problems at once via the shared
:func:`repro.grouping.query.truncation_problems` validator so callers
building patterns by hand (tests, the bruteforce checkers, external
tools) can lint before committing to a check.

Run it through :func:`repro.analysis.analyze_truncation`.
"""

from repro.analysis.diagnostics import ERROR
from repro.analysis.registry import Rule, register
from repro.grouping.query import truncation_problems

__all__ = ["check_truncation"]


def check_truncation(query, kept_paths, rule):
    """One error diagnostic per problem ``truncate`` would raise on."""
    out = []
    for message, path in truncation_problems(query, kept_paths):
        pointer = None
        if path is not None:
            pointer = "$" + "".join("/" + label for label in path)
        out.append(rule.diagnostic(message, path=pointer))
    return out


register(Rule(
    "COQL006", "bad-truncation-pattern", ERROR,
    "a truncation pattern is malformed: missing root, unknown set-node "
    "path, or not prefix-closed",
    paper="Section 4 (truncation patterns / obligations)",
    kind="truncation",
    check=check_truncation,
))
