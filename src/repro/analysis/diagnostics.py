"""Diagnostics: the findings a static-analysis run reports.

A :class:`Diagnostic` is one finding of one rule: a stable rule code
(``COQL001`` … ``COQL007``, plus ``COQL000`` for front-end failures), a
severity, a human-readable message, and — when the query was parsed
from text — the ``(line, col)`` source span the parser attached to the
offending AST node (see :attr:`repro.coql.ast.Expr.span`).  ``path`` is
a structural pointer (an AST path such as ``$.head.kids`` or a
grouping-tree path such as ``$/kids``) for programmatically built
queries that have no source text.

Severities:

* ``error`` — the query is wrong or degenerate (unbound variable,
  unsatisfiable body, malformed truncation pattern); ``repro lint``
  exits 1 when any error-severity finding is present;
* ``warning`` — the query is legal but has a property that hurts the
  decision procedures (cartesian products, empty-set hazards, search
  spaces past the budget);
* ``info`` — an improvement opportunity (redundant subgoals).
"""

from repro.pickling import PicklableSlots

__all__ = ["Diagnostic", "ERROR", "WARNING", "INFO", "SEVERITIES", "max_severity"]

ERROR = "error"
WARNING = "warning"
INFO = "info"

#: All severities, most severe first.
SEVERITIES = (ERROR, WARNING, INFO)

_RANK = {severity: rank for rank, severity in enumerate(SEVERITIES)}


def max_severity(diagnostics):
    """The most severe severity present, or None for no findings."""
    best = None
    for diagnostic in diagnostics:
        if best is None or _RANK[diagnostic.severity] < _RANK[best]:
            best = diagnostic.severity
    return best


class Diagnostic(PicklableSlots):
    """One static-analysis finding.  Immutable value object.

    Attributes:
        code: stable rule code (``COQL001`` … ``COQL007``, ``COQL000``).
        severity: ``error`` / ``warning`` / ``info``.
        message: the human-readable finding.
        rule: the rule's short name (``unused-generator``, …).
        path: structural pointer into the query (AST or grouping path),
            or None.
        line / col: 1-based source position, or None when the query was
            built programmatically.
        paper: the paper section/theorem grounding the rule, or None.
        target: the file or label the finding belongs to (filled in by
            batch front-ends such as ``repro lint``), or None.
    """

    __slots__ = ("code", "severity", "message", "rule", "path", "line",
                 "col", "paper", "target")

    def __init__(self, code, severity, message, rule=None, path=None,
                 span=None, paper=None, target=None):
        if severity not in _RANK:
            raise ValueError("unknown severity %r" % (severity,))
        object.__setattr__(self, "code", code)
        object.__setattr__(self, "severity", severity)
        object.__setattr__(self, "message", message)
        object.__setattr__(self, "rule", rule)
        object.__setattr__(self, "path", path)
        line, col = span if span is not None else (None, None)
        object.__setattr__(self, "line", line)
        object.__setattr__(self, "col", col)
        object.__setattr__(self, "paper", paper)
        object.__setattr__(self, "target", target)

    def __setattr__(self, name, value):
        raise AttributeError("Diagnostic is immutable")

    @property
    def span(self):
        """``(line, col)`` or None."""
        if self.line is None:
            return None
        return (self.line, self.col)

    def with_target(self, target):
        """A copy labelled with *target* (a file name or query label)."""
        return Diagnostic(
            self.code, self.severity, self.message, rule=self.rule,
            path=self.path, span=self.span, paper=self.paper, target=target,
        )

    def sort_key(self):
        """Total order: ``(target, path, line, col, code, message)``.

        Including ``path`` makes report order independent of rule
        registration and dict iteration order, so JSON reports are
        byte-stable across runs and refactors.
        """
        big = 1 << 30
        return (
            self.target or "",
            self.path or "",
            self.line if self.line is not None else big,
            self.col if self.col is not None else big,
            self.code,
            self.message,
        )

    def as_dict(self):
        """A plain, schema-stable dictionary (the JSON wire format)."""
        return {
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "paper": self.paper,
        }

    def format(self):
        """One text line: ``[line:col] CODE severity: message``."""
        prefix = ""
        if self.line is not None:
            prefix = "%d:%d " % (self.line, self.col)
        elif self.path:
            prefix = "%s " % self.path
        return "%s%s %s: %s" % (prefix, self.code, self.severity, self.message)

    def __eq__(self, other):
        if not isinstance(other, Diagnostic):
            return NotImplemented
        return all(
            getattr(self, name) == getattr(other, name)
            for name in self.__slots__
        )

    def __hash__(self):
        return hash(tuple(getattr(self, name) for name in self.__slots__))

    def __repr__(self):
        return "Diagnostic(%s %s: %s)" % (self.code, self.severity,
                                          self.message)
