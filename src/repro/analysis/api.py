"""The analysis entry points: :func:`analyze` and :func:`analyze_truncation`.

>>> from repro.analysis import analyze
>>> diagnostics = analyze(
...     "select [a: x.a] from x in r, y in r", {"r": {"a": "atom"}})
>>> [d.code for d in diagnostics]
['COQL003', 'COQL005', 'COQL001']

(Diagnostics sort by path, then source position, then code — the
cartesian-product and redundant-generator findings point at the whole
query ``$``, the unused-generator finding at ``$.from[1]``.)

:func:`analyze` runs every registered query rule (COQL001 … COQL011)
over one query; front-end failures — parse errors, type errors,
queries outside the encodable fragment — come back as ``COQL000``
diagnostics instead of exceptions, so the analyzer never raises on a
bad *query* (it still raises :class:`ReproError` on a bad *rule code*
in ``select``/``ignore``, which is a caller bug).

The same engine-backed caches serve analysis and containment: pass the
engine you will run checks on and the analyzer's ``prepare`` /
provably-non-empty work is work the checks no longer do.
"""

from repro.analysis.context import AnalysisConfig, AnalysisContext
from repro.analysis.diagnostics import ERROR, WARNING, Diagnostic
from repro.analysis.registry import get_rule, select_rules
from repro.coql.ast import Expr
from repro.coql.containment import as_schema
from repro.coql.parser import parse_coql
from repro.errors import ParseError, ReproError, TypeCheckError

__all__ = ["analyze", "analyze_truncation"]


def analyze(query, schema, engine=None, config=None, select=None,
            ignore=None):
    """Run the static-analysis rules over one COQL query.

    :param query: COQL text or a :class:`repro.coql.ast.Expr`.
    :param schema: anything :func:`repro.coql.containment.as_schema`
        accepts.
    :param engine: the :class:`ContainmentEngine` whose caches to share
        (default: the process-wide :func:`repro.engine.default_engine`).
    :param config: an :class:`AnalysisConfig` (default: stock knobs).
    :param select: iterable of rule codes to run exclusively.
    :param ignore: iterable of rule codes to skip.
    :returns: a sorted, de-duplicated list of :class:`Diagnostic`.
    :raises ReproError: on unknown rule codes in *select* / *ignore*.
    """
    if engine is None:
        from repro.engine import default_engine

        engine = default_engine()
    if config is None:
        config = AnalysisConfig()
    # Validate codes up front: typos must be usage errors even when the
    # query itself fails to parse.
    rules = select_rules(
        select, ignore, kind="query", expensive=config.expensive
    )
    front_end = _wanted("COQL000", select, ignore)

    schema = as_schema(schema)
    if isinstance(query, str):
        try:
            query = parse_coql(query)
        except ParseError as exc:
            return [_front_end_diagnostic(exc)] if front_end else []
    if not isinstance(query, Expr):
        raise ReproError("not a COQL query: %r" % (query,))

    ctx = AnalysisContext(query, schema, engine, config)
    diagnostics = []
    if front_end:
        ctx.encoded()
        if ctx.front_end_error is not None:
            diagnostics.append(_front_end_diagnostic(ctx.front_end_error))
    for rule in rules:
        diagnostics.extend(rule.check(ctx, rule))
    return _finished(diagnostics)


def analyze_truncation(query, kept_paths, select=None, ignore=None):
    """Lint a truncation pattern for a grouping query (COQL006).

    :param query: a :class:`repro.grouping.GroupingQuery`.
    :param kept_paths: the candidate pattern — an iterable of label
        tuples that should survive :meth:`GroupingQuery.truncate`.
    :returns: a sorted list of :class:`Diagnostic` (empty iff
        ``query.truncate(kept_paths)`` will succeed).
    """
    diagnostics = []
    for rule in select_rules(select, ignore, kind="truncation"):
        diagnostics.extend(rule.check(query, set(kept_paths), rule))
    return _finished(diagnostics)


def _wanted(code, select, ignore):
    if ignore is not None and code in ignore:
        return False
    if select is not None and code not in select:
        return False
    return True


def _front_end_diagnostic(exc):
    rule = get_rule("COQL000")
    severity = (
        ERROR if isinstance(exc, (ParseError, TypeCheckError)) else WARNING
    )
    return rule.diagnostic(
        "%s: %s" % (type(exc).__name__, exc),
        severity=severity,
        span=getattr(exc, "span", None),
    )


def _finished(diagnostics):
    seen = set()
    out = []
    for diagnostic in sorted(diagnostics, key=Diagnostic.sort_key):
        if diagnostic in seen:
            continue
        seen.add(diagnostic)
        out.append(diagnostic)
    return out
