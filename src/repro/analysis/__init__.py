"""Static analysis (linting) of COQL queries, grounded in the paper.

A rule-based analyzer over the same front end the decision procedures
use.  Each rule has a stable ``COQLnnn`` code, a severity, and the
paper result that grounds it:

========  ========================  ========  ==================================
Code      Name                      Severity  Grounds
========  ========================  ========  ==================================
COQL000   front-end-failure         error*    Sections 3 / 5.1 (parse, type,
                                              encodable fragment)
COQL001   unbound-or-unused-        error*    Section 3 (well-formedness)
          variable
COQL002   unsatisfiable-body        error*    Section 4 ({} ⊑ everything)
COQL003   cartesian-product         warning   Section 5.2 (canonical DBs)
COQL004   empty-set-hazard          warning   Theorem 4.2 (empty-set-free)
COQL005   redundant-subgoal         info      Section 1 (motivating use)
COQL006   bad-truncation-pattern    error     Section 4 (obligations)
COQL007   complexity-budget         warning   Theorem 5.1 (NP-complete)
COQL008   unbounded-fanout-join     warning   Theorem 5.1 (fan-out/nesting)
COQL009   interval-refuted-         warning   Section 4 (relative to a DB)
          condition
COQL010   singleton-generator       info      Section 5.1 (normal form)
COQL011   certified-complexity-     warning   Theorem 5.1 (certified bound)
          budget
========  ========================  ========  ==================================

(*) default; individual findings may downgrade (an encoding failure is
a warning, a nested contradiction is a warning, an unused generator is
a warning).

COQL008–011 are powered by the abstract interpreter of
:mod:`repro.analysis.interp`, which also produces the
:class:`CostCertificate` behind ``repro analyze`` and the
``ordering="cost"`` search strategy.

Entry points: :func:`analyze` for queries, :func:`analyze_truncation`
for truncation patterns; :func:`cost_certificate` /
``ContainmentEngine.cost_certificate`` for cost certificates;
``repro lint`` / ``repro analyze`` on the command line;
``ContainmentEngine(analyze=True)`` to pre-check every ``contains``
call; ``ViewCatalog.lint()`` for catalogs.
"""

from repro.analysis.api import analyze, analyze_truncation
from repro.analysis.context import AnalysisConfig, AnalysisContext
from repro.analysis.diagnostics import (
    ERROR,
    INFO,
    SEVERITIES,
    WARNING,
    Diagnostic,
    max_severity,
)
from repro.analysis.interp import (
    CostCertificate,
    DatabaseStatistics,
    Interval,
    QueryFacts,
    cost_certificate,
    interpret,
)
from repro.analysis.registry import Rule, all_rules, get_rule, select_rules

__all__ = [
    "analyze",
    "analyze_truncation",
    "AnalysisConfig",
    "AnalysisContext",
    "Diagnostic",
    "ERROR",
    "WARNING",
    "INFO",
    "SEVERITIES",
    "max_severity",
    "Rule",
    "all_rules",
    "get_rule",
    "select_rules",
    "CostCertificate",
    "DatabaseStatistics",
    "Interval",
    "QueryFacts",
    "cost_certificate",
    "interpret",
]
