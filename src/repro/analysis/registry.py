"""The rule registry: stable codes, metadata, and rule selection.

Every rule registers itself (at import of :mod:`repro.analysis.rules` /
:mod:`repro.analysis.truncation`) under a stable ``COQLnnn`` code with a
short name, a default severity, a one-line summary, the paper reference
that grounds it, and a *kind*:

* ``query`` — runs over a COQL query inside :func:`repro.analysis.analyze`;
* ``truncation`` — runs over a :class:`repro.grouping.GroupingQuery`
  plus a proposed truncation pattern
  (:func:`repro.analysis.analyze_truncation`);
* ``front-end`` — not directly runnable; the code the analyzer uses for
  parse/type-check/encoding failures of the query itself.

``--select``/``--ignore`` filtering is shared by the API and the CLI;
unknown codes raise :class:`repro.errors.ReproError` so typos become
usage errors (exit code 2), never silently-skipped rules.
"""

from repro.errors import ReproError

__all__ = ["Rule", "register", "all_rules", "get_rule", "select_rules"]


class Rule:
    """Metadata and implementation of one analysis rule."""

    __slots__ = ("code", "name", "severity", "summary", "paper", "kind",
                 "expensive", "check")

    def __init__(self, code, name, severity, summary, paper, kind="query",
                 expensive=False, check=None):
        self.code = code
        self.name = name
        self.severity = severity
        self.summary = summary
        self.paper = paper
        self.kind = kind
        self.expensive = expensive
        self.check = check

    def diagnostic(self, message, severity=None, path=None, span=None):
        """Build a :class:`Diagnostic` carrying this rule's metadata."""
        from repro.analysis.diagnostics import Diagnostic

        return Diagnostic(
            self.code,
            severity or self.severity,
            message,
            rule=self.name,
            path=path,
            span=span,
            paper=self.paper,
        )

    def __repr__(self):
        return "Rule(%s %s, %s)" % (self.code, self.name, self.severity)


_RULES = {}


def register(rule):
    """Register *rule* under its code (idempotent per code)."""
    if rule.code in _RULES:
        raise ReproError("duplicate rule code %s" % rule.code)
    _RULES[rule.code] = rule
    return rule


def all_rules():
    """Every registered rule, in code order."""
    _load()
    return tuple(_RULES[code] for code in sorted(_RULES))


def get_rule(code):
    """The rule registered under *code* (raises on unknown codes)."""
    _load()
    try:
        return _RULES[code]
    except KeyError:
        raise ReproError("unknown analysis rule code %r" % (code,)) from None


def select_rules(select=None, ignore=None, kind="query", expensive=True):
    """The runnable rules of *kind* after ``--select``/``--ignore``.

    :param select: iterable of codes to run exclusively (None = all).
    :param ignore: iterable of codes to drop.
    :param expensive: include rules flagged expensive (the minimization
        rule); the engine's pre-check passes False.
    :raises ReproError: on codes that name no registered rule.
    """
    _load()
    chosen = set(_validated(select)) if select is not None else None
    dropped = set(_validated(ignore)) if ignore is not None else set()
    out = []
    for rule in all_rules():
        if rule.check is None or rule.kind != kind:
            continue
        if chosen is not None and rule.code not in chosen:
            continue
        if rule.code in dropped:
            continue
        if rule.expensive and not expensive:
            continue
        out.append(rule)
    return tuple(out)


def _validated(codes):
    for code in codes:
        get_rule(code)
        yield code


def _load():
    # Rule modules self-register on import; importing here avoids a
    # cycle (rules import the registry).
    from repro.analysis import cost, rules, truncation  # noqa: F401
