"""Cost-certificate analysis rules (COQL008 … COQL011).

These rules consume the abstract interpreter of
:mod:`repro.analysis.interp` — per-variable cardinality intervals,
per-path fan-out bounds, and the composed :class:`CostCertificate` —
rather than re-deriving structure from the AST:

* COQL008 flags joins whose per-outer-row fan-out is unbounded — fan-out
  and nesting depth are exactly the parameters Koch's complexity study
  identifies as separating tractable from intractable instances of
  nonrecursive queries over complex values;
* COQL009 reports conditions the interval domain refutes against
  sampled database statistics (dead on the sampled database: the value
  sets of the two sides are disjoint) — pass
  ``AnalysisConfig(stats=DatabaseStatistics.sample(db))`` to enable it;
* COQL010 points out guaranteed-singleton generators (``[1, 1]``
  cardinality sources) that normalization will inline — usually a sign
  the query can be written more directly;
* COQL011 is the evidence-carrying successor of COQL007's crude size
  heuristic: it computes the full self-containment
  :class:`CostCertificate` (sound node bound over obligation patterns,
  witness stages, and search components — Theorem 5.1) and warns with
  the certificate's own numbers when the bound exceeds the budget.
"""

from repro.analysis.diagnostics import INFO, WARNING
from repro.analysis.registry import Rule, register
from repro.errors import ReproError

__all__ = [
    "check_unbounded_fanout",
    "check_dead_conditions",
    "check_singleton_generators",
    "check_certified_complexity",
]


def _facts(ctx):
    """The interpreter's facts for this query (computed at most once)."""
    from repro.analysis.interp import interpret

    cached = getattr(ctx, "_interp_facts", None)
    if cached is None:
        cached = interpret(ctx.query, ctx.schema, ctx.config.stats)
        ctx._interp_facts = cached
    return cached


# -- COQL008: unbounded fan-out join -----------------------------------


def check_unbounded_fanout(ctx, rule):
    """A nested join with unbounded per-outer-row fan-out.

    A head-nested select is evaluated once per outer row; when it joins
    two or more generators whose cardinality interval is ``[0, inf]``,
    one outer row can produce unboundedly many output rows *and* the
    canonical database the simulation search walks grows with the
    product of the unbounded sources.  Database statistics
    (``AnalysisConfig(stats=...)``) bound relation cardinalities and
    silence the rule for small relations.
    """
    out = []
    for fact in _facts(ctx).selects:
        if not fact.nested:
            continue
        if len(fact.unbounded_generators) < 2:
            continue
        if not fact.out_card.is_unbounded:
            continue
        out.append(rule.diagnostic(
            "nested join of unbounded generators %s: each outer row can "
            "produce unboundedly many rows (fan-out bound inf); unbounded "
            "fan-out times nesting depth is what makes instances "
            "intractable" % ", ".join(
                repr(v) for v in fact.unbounded_generators
            ),
            path=fact.path, span=fact.span,
        ))
    return out


register(Rule(
    "COQL008", "unbounded-fanout-join", WARNING,
    "a nested select joins two or more unbounded generators, so its "
    "per-outer-row fan-out is unbounded",
    paper="Theorem 5.1 (search space); fan-out/nesting tractability",
    check=check_unbounded_fanout,
))


# -- COQL009: interval-refuted dead condition --------------------------


def check_dead_conditions(ctx, rule):
    """A condition the interval domain refutes on the sampled database.

    Only meaningful with database statistics: when the complete value
    sets of a condition's two sides (a constant, or a relation column
    whose sample was not truncated) are disjoint, the condition can
    never hold on that database and its select contributes nothing.
    Universal contradictions (dead on *every* database) remain
    COQL002's finding.
    """
    if ctx.config.stats is None:
        return []
    out = []
    for fact in _facts(ctx).dead_conditions:
        if fact.universal:
            continue  # COQL002 territory
        out.append(rule.diagnostic(
            "condition %s can never hold on the sampled database (the "
            "value sets of its sides are disjoint); this subquery is "
            "empty there" % fact.description,
            path=fact.path, span=fact.span,
        ))
    return out


register(Rule(
    "COQL009", "interval-refuted-condition", WARNING,
    "database statistics refute a condition: the value sets of its two "
    "sides are disjoint on the sampled database",
    paper="Section 4 (containment relative to a database)",
    check=check_dead_conditions,
))


# -- COQL010: guaranteed-singleton generator ---------------------------


def check_singleton_generators(ctx, rule):
    """A generator over a guaranteed one-element set.

    ``x in {e}`` (or a relation statistics pin to exactly one row) binds
    ``x`` to a single value; comprehension normalization inlines the
    singleton case away, so the generator is pure notation — usually
    clearer (and identical after normalization) written inline.
    """
    out = []
    for fact in _facts(ctx).generators:
        if not fact.card.is_singleton:
            continue
        out.append(rule.diagnostic(
            "generator %r ranges over a guaranteed singleton (cardinality "
            "[1, 1]); normalization inlines it — consider writing the "
            "element directly" % fact.var,
            path=fact.path, span=fact.span,
        ))
    return out


register(Rule(
    "COQL010", "singleton-generator", INFO,
    "a generator ranges over a guaranteed one-element set and will be "
    "inlined by normalization",
    paper="Section 5.1 (comprehension normal form)",
    check=check_singleton_generators,
))


# -- COQL011: certified complexity budget ------------------------------


def check_certified_complexity(ctx, rule):
    """The cost certificate's sound node bound exceeds the budget.

    Where COQL007 multiplies crude body sizes, this rule computes the
    actual :class:`CostCertificate` for a self-containment check —
    obligation patterns times witness stages times per-component
    ``prod(1 + rows) - 1`` bounds — and carries the evidence in the
    message.  The bound is falsifiable: ``SearchCounters.nodes`` of the
    corresponding check never exceeds it (gated in
    ``benchmarks/bench_cost_model.py``).
    """
    encoded = ctx.encoded()
    if encoded is None or encoded.is_empty:
        return []
    try:
        certificate = ctx.engine.pipeline().analyze_cost(
            encoded.query, encoded.query, ctx.config.witnesses
        )
    except ReproError:
        return []
    if certificate.total_bound <= ctx.config.complexity_budget:
        return []
    worst = max(
        (c.node_bound for c in certificate.components), default=0
    )
    return [rule.diagnostic(
        "certified containment search bound %s nodes exceeds the budget "
        "%.1e (%d obligation pattern(s) x witness stages %s; worst "
        "component bound %s); simulation is NP-complete — consider "
        "witnesses bounds or a timeout" % (
            _fmt(certificate.total_bound),
            float(ctx.config.complexity_budget),
            certificate.patterns,
            list(certificate.witness_stages),
            _fmt(worst),
        ),
        path="$", span=ctx.query.span,
    )]


def _fmt(bound):
    from repro.analysis.interp import format_bound

    return format_bound(bound)


register(Rule(
    "COQL011", "certified-complexity-budget", WARNING,
    "the cost certificate's sound search-node bound exceeds the "
    "configured budget",
    paper="Theorem 5.1 (simulation is NP-complete; search-space bound)",
    check=check_certified_complexity,
))
