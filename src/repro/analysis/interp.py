"""Abstract interpretation of COQL queries into cost certificates.

Theorem 5.1 reduces containment of complex-object queries to a bounded
family of homomorphism searches (simulation obligations over truncated
grouping trees).  The search-space size of each obligation is therefore
a *statically analyzable* quantity: the simulation target built by
:func:`repro.grouping.simulation.build_simulation_target` has a known
number of rows per predicate (one generic copy plus ``witnesses``
witness copies per non-root path), and a deterministic backtracking
search over ``k`` atoms with at most ``c_i`` candidate rows each visits
at most ``prod(1 + c_i) - 1`` nodes — every counted node is a distinct
consistent partial assignment, and a deterministic strategy extends any
given partial assignment at most once.  Forward checking and AC-3 only
prune; they never add nodes.  Composing these per-component bounds over
obligation patterns (Section 4 truncations) and witness-escalation
stages yields a :class:`CostCertificate` — a *sound* upper bound on the
``SearchCounters.nodes`` an engine check can record, falsifiable
against the actual counters (`benchmarks/bench_cost_model.py` gates on
``predicted >= actual`` for every case).

Two abstract domains feed the certificate and the COQL008–011 lint
rules:

* **cardinality intervals** ``[lo, hi]`` with ``hi ∈ ℕ ∪ {∞}`` on every
  set-valued expression — schema relations are ``[0, ∞]`` unless
  database statistics pin them, ``{e}`` is ``[1, 1]``, ``{}`` is
  ``[0, 0]``, and a select's output is the interval product of its
  generators (zero when a condition is refuted);
* **per-path fan-out bounds** — for each nested select, how many output
  rows one outer row can produce; unbounded fan-out on two or more
  generators of a join is exactly the parameter Koch's complexity study
  identifies as separating tractable from intractable instances.

Everything here is total: :func:`interpret` never raises on arbitrary
(even ill-typed) ASTs, so it can run over the parser-fuzz corpus, and
all bounds are non-negative and finite-or-``inf``.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field, replace
from typing import (
    Any,
    Callable,
    Dict,
    FrozenSet,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.coql.ast import (
    Const as ASTConst,
    EmptySet,
    Expr,
    Flatten,
    Proj,
    RecordExpr,
    RelRef,
    Select,
    Singleton,
    VarRef,
)
from repro.cq.propagation import component_cost_estimate, component_strategy
from repro.cq.terms import Var

__all__ = [
    "INF",
    "Bound",
    "Interval",
    "ColumnStats",
    "RelationStats",
    "DatabaseStatistics",
    "GeneratorFact",
    "ConditionFact",
    "SelectFact",
    "QueryFacts",
    "interpret",
    "component_node_bound",
    "target_row_bounds",
    "ComponentBound",
    "pair_certificate",
    "cost_certificate",
    "CostCertificate",
    "format_bound",
    "PATTERN_ENUMERATION_CAP",
]

INF: float = float("inf")

#: A non-negative count that may be infinite.  Search-side bounds (node
#: counts over simulation targets) are always finite integers; ``INF``
#: only enters through the AST-level cardinality domain.
Bound = Union[int, float]

#: Above this many optional (not provably non-empty) paths the
#: certificate stops enumerating truncation patterns individually and
#: multiplies the full-pattern bound by ``2**optional`` instead.
PATTERN_ENUMERATION_CAP = 6


def _bound_add(a: Bound, b: Bound) -> Bound:
    if a == INF or b == INF:
        return INF
    return a + b


def _bound_mul(a: Bound, b: Bound) -> Bound:
    # 0 * inf = 0: an empty generator yields no rows no matter how wide
    # the other side is.
    if a == 0 or b == 0:
        return 0
    if a == INF or b == INF:
        return INF
    return a * b


def format_bound(value: Bound) -> str:
    """Human-readable rendering: exact small ints, ``~1.2e+30``, ``inf``."""
    if value == INF:
        return "inf"
    number = int(value)
    if number >= 10**7:
        return "~%.2e" % float(number)
    return str(number)


def _json_bound(value: Bound) -> Union[int, str]:
    """JSON-safe rendering (``inf`` is not valid JSON; big ints are)."""
    if value == INF:
        return "inf"
    return int(value)


# -- the cardinality-interval domain ----------------------------------------


@dataclass(frozen=True)
class Interval:
    """A cardinality interval ``[lo, hi]`` with ``0 <= lo <= hi <= inf``."""

    lo: int
    hi: Bound

    @classmethod
    def top(cls) -> "Interval":
        return cls(0, INF)

    @classmethod
    def point(cls, n: int) -> "Interval":
        return cls(n, n)

    @property
    def is_singleton(self) -> bool:
        """Exactly one element, always."""
        return self.lo == 1 and self.hi == 1

    @property
    def is_unbounded(self) -> bool:
        return self.hi == INF

    @property
    def is_empty(self) -> bool:
        """Always the empty set."""
        return self.hi == 0

    def times(self, other: "Interval") -> "Interval":
        """Interval product — the cardinality of a cross join."""
        hi = _bound_mul(self.hi, other.hi)
        return Interval(self.lo * other.lo, hi)

    def join(self, other: "Interval") -> "Interval":
        """Least upper bound (interval hull)."""
        hi = self.hi if other.hi <= self.hi else other.hi
        return Interval(min(self.lo, other.lo), hi)

    def with_zero(self) -> "Interval":
        """Widen the lower bound to zero (selection may filter rows)."""
        if self.lo == 0:
            return self
        return Interval(0, self.hi)

    def __str__(self) -> str:
        return "[%d, %s]" % (self.lo, format_bound(self.hi))


# -- database statistics (sampled from witness databases) -------------------


@dataclass(frozen=True)
class ColumnStats:
    """Per-column facts sampled from one relation.

    ``values`` is the complete set of atomic values seen in the column,
    or ``None`` when the sample was truncated (more than ``max_values``
    distinct values) or contained non-atomic entries — a ``None`` column
    can never refute a condition.
    """

    distinct: int
    values: Optional[FrozenSet[Any]]


@dataclass(frozen=True)
class RelationStats:
    rows: int
    columns: Mapping[str, ColumnStats]


@dataclass(frozen=True)
class DatabaseStatistics:
    """Cardinalities and column-value sets sampled from a database.

    Built with :meth:`sample` from a :class:`repro.objects.Database`;
    sharpens relation intervals from ``[0, inf]`` to exact points and
    enables value-level refutation of conditions (COQL009's
    non-universal variant: dead *on the sampled database*).
    """

    relations: Mapping[str, RelationStats]

    @classmethod
    def sample(cls, db: Any, max_values: int = 64) -> "DatabaseStatistics":
        relations: Dict[str, RelationStats] = {}
        for relation in db.relations():
            columns: Dict[str, ColumnStats] = {}
            for attr in relation.attributes():
                values: Optional[set] = set()
                for row in relation.rows:
                    try:
                        value = row[attr]
                        hash(value)
                    except Exception:
                        values = None
                        break
                    values.add(value)
                    if len(values) > max_values:
                        values = None
                        break
                if values is None:
                    # Distinct count unknown past the cap; record the
                    # row count as a safe upper bound.
                    columns[attr] = ColumnStats(len(relation.rows), None)
                else:
                    columns[attr] = ColumnStats(len(values), frozenset(values))
            relations[relation.name] = RelationStats(len(relation.rows), columns)
        return cls(relations)

    def relation_cardinality(self, name: str) -> Optional[Interval]:
        stats = self.relations.get(name)
        if stats is None:
            return None
        return Interval.point(stats.rows)

    def column_values(self, name: str, attr: str) -> Optional[FrozenSet[Any]]:
        stats = self.relations.get(name)
        if stats is None:
            return None
        column = stats.columns.get(attr)
        if column is None:
            return None
        return column.values

    def as_dict(self) -> Dict[str, Any]:
        return {
            name: {
                "rows": stats.rows,
                "columns": {
                    attr: {
                        "distinct": col.distinct,
                        "complete": col.values is not None,
                    }
                    for attr, col in sorted(stats.columns.items())
                },
            }
            for name, stats in sorted(self.relations.items())
        }


# -- AST-level facts --------------------------------------------------------


@dataclass(frozen=True)
class GeneratorFact:
    """One ``var in source`` generator and the interval of its source."""

    var: str
    path: str
    span: Optional[Tuple[int, int]]
    card: Interval
    relation: Optional[str]


@dataclass(frozen=True)
class ConditionFact:
    """A condition the interpreter proved dead.

    ``universal`` means dead on *every* database (a constant-chain
    contradiction); otherwise dead only on the sampled database (a
    column value-set refutation).
    """

    path: str
    span: Optional[Tuple[int, int]]
    description: str
    universal: bool


@dataclass(frozen=True)
class SelectFact:
    """Facts about one select block."""

    path: str
    span: Optional[Tuple[int, int]]
    out_card: Interval
    generator_cards: Tuple[Tuple[str, Interval], ...]
    unbounded_generators: Tuple[str, ...]
    nested: bool


@dataclass(frozen=True)
class QueryFacts:
    """Everything :func:`interpret` derived from one query."""

    card: Interval
    selects: Tuple[SelectFact, ...]
    generators: Tuple[GeneratorFact, ...]
    dead_conditions: Tuple[ConditionFact, ...]

    def fanout(self) -> Tuple[Tuple[str, Bound], ...]:
        """Per-path fan-out: output rows one outer row can produce."""
        return tuple(
            (fact.path, fact.out_card.hi)
            for fact in self.selects
            if fact.nested
        )

    def as_dict(self) -> Dict[str, Any]:
        return {
            "card": {"lo": self.card.lo, "hi": _json_bound(self.card.hi)},
            "selects": [
                {
                    "path": fact.path,
                    "out_lo": fact.out_card.lo,
                    "out_hi": _json_bound(fact.out_card.hi),
                    "unbounded_generators": list(fact.unbounded_generators),
                    "nested": fact.nested,
                }
                for fact in self.selects
            ],
            "dead_conditions": [
                {
                    "path": fact.path,
                    "description": fact.description,
                    "universal": fact.universal,
                }
                for fact in self.dead_conditions
            ],
        }


@dataclass(frozen=True)
class _SetBound:
    """Abstraction of a set value: cardinality plus element abstraction."""

    card: Interval
    elem: Optional["_SetBound"] = None


@dataclass(frozen=True)
class _VarInfo:
    """What the interpreter knows about one generator variable."""

    elem: Optional[_SetBound]
    relation: Optional[str]


_Env = Dict[str, _VarInfo]


def _describe_condition(left: Any, right: Any) -> str:
    return "%r = %r" % (left, right)


class _UnionFind:
    """Union-find over syntactic terms; constants win as representatives."""

    def __init__(self) -> None:
        self._parent: Dict[Any, Any] = {}

    def find(self, term: Any) -> Any:
        parent = self._parent
        while parent.get(term, term) != term:
            term = parent[term]
        return term

    def union(self, left: Any, right: Any) -> bool:
        """Merge; return False when this closes a const/const clash."""
        a, b = self.find(left), self.find(right)
        if a == b:
            return True
        a_const = isinstance(a, ASTConst)
        b_const = isinstance(b, ASTConst)
        if a_const and b_const:
            return a.value == b.value
        # Constants become representatives so chains resolve to them.
        if a_const:
            self._parent[b] = a
        else:
            self._parent[a] = b
        return True


def _value_set(
    expr: Any, env: _Env, stats: Optional[DatabaseStatistics]
) -> Optional[FrozenSet[Any]]:
    """The complete value set one condition side can take, if known."""
    if stats is None:
        return None
    if isinstance(expr, ASTConst):
        return frozenset([expr.value])
    if isinstance(expr, Proj) and isinstance(expr.expr, VarRef):
        info = env.get(expr.expr.name)
        if info is not None and info.relation is not None:
            return stats.column_values(info.relation, expr.attr)
    return None


def interpret(
    query: Any,
    schema: Any = None,
    stats: Optional[DatabaseStatistics] = None,
) -> QueryFacts:
    """Abstractly interpret a COQL AST.

    Total on arbitrary expression trees — ill-typed or fuzz-generated
    ASTs produce (sound, possibly trivial) facts rather than errors.
    *schema* is accepted for interface symmetry with the deciders; the
    abstraction only needs it through *stats*.
    """
    selects: List[SelectFact] = []
    generators: List[GeneratorFact] = []
    dead: List[ConditionFact] = []

    def go(expr: Any, env: _Env, path: str, nested: bool) -> _SetBound:
        if isinstance(expr, EmptySet):
            return _SetBound(Interval.point(0))
        if isinstance(expr, Singleton):
            elem = go(expr.expr, env, path + ".elem", nested)
            return _SetBound(Interval.point(1), elem)
        if isinstance(expr, Flatten):
            outer = go(expr.expr, env, path + ".flatten", nested)
            inner = outer.elem or _SetBound(Interval.top())
            hi = _bound_mul(outer.card.hi, inner.card.hi)
            return _SetBound(Interval(0, hi), inner.elem)
        if isinstance(expr, RelRef):
            card: Optional[Interval] = None
            if stats is not None:
                card = stats.relation_cardinality(expr.name)
            return _SetBound(card if card is not None else Interval.top())
        if isinstance(expr, VarRef):
            info = env.get(expr.name)
            if info is not None and info.elem is not None:
                return info.elem
            return _SetBound(Interval.top())
        if isinstance(expr, Proj):
            go(expr.expr, env, path + ".proj", nested)
            return _SetBound(Interval.top())
        if isinstance(expr, RecordExpr):
            for name, value in expr.fields:
                go(value, env, "%s.%s" % (path, name), nested)
            return _SetBound(Interval.top())
        if isinstance(expr, Select):
            return go_select(expr, env, path, nested)
        # Unknown node kind (future extensions, fuzz garbage): sound top.
        return _SetBound(Interval.top())

    def go_select(expr: Select, env: _Env, path: str, nested: bool) -> _SetBound:
        scope: _Env = dict(env)
        cards: List[Tuple[str, Interval]] = []
        unbounded: List[str] = []
        for position, (var, source) in enumerate(expr.generators):
            source_bound = go(
                source, scope, "%s.from[%d]" % (path, position), False
            )
            relation = source.name if isinstance(source, RelRef) else None
            span = source.span if source.span is not None else expr.span
            generators.append(
                GeneratorFact(
                    var=var,
                    path="%s.from[%d]" % (path, position),
                    span=span,
                    card=source_bound.card,
                    relation=relation,
                )
            )
            cards.append((var, source_bound.card))
            if source_bound.card.is_unbounded:
                unbounded.append(var)
            scope[var] = _VarInfo(source_bound.elem, relation)

        refuted = False
        universal_refuted = False
        uf = _UnionFind()
        for position, (left, right) in enumerate(expr.conditions):
            cond_path = "%s.where[%d]" % (path, position)
            span = left.span if left.span is not None else expr.span
            # Nested selects inside conditions are ill-typed, but the
            # interpreter must stay total over them.
            for side in (left, right):
                if isinstance(side, Select):
                    go(side, scope, cond_path, True)
            if not uf.union(left, right):
                dead.append(
                    ConditionFact(
                        path=cond_path,
                        span=span,
                        description=_describe_condition(left, right),
                        universal=True,
                    )
                )
                refuted = True
                universal_refuted = True
                continue
            left_values = _value_set(left, scope, stats)
            right_values = _value_set(right, scope, stats)
            if (
                left_values is not None
                and right_values is not None
                and not (left_values & right_values)
            ):
                dead.append(
                    ConditionFact(
                        path=cond_path,
                        span=span,
                        description=_describe_condition(left, right),
                        universal=False,
                    )
                )
                refuted = True

        head_bound = go(expr.head, scope, path + ".head", True)

        out = Interval.point(1)
        for __, card in cards:
            out = out.times(card)
        if refuted:
            out = Interval.point(0)
        elif expr.conditions:
            out = out.with_zero()
        # A universally refuted select is [0, 0] on every database; a
        # stats-refuted one only on the sampled database, but the
        # certificate reports intervals relative to the given stats.
        del universal_refuted
        selects.append(
            SelectFact(
                path=path,
                span=expr.span,
                out_card=out,
                generator_cards=tuple(cards),
                unbounded_generators=tuple(unbounded),
                nested=nested,
            )
        )
        return _SetBound(out, head_bound if isinstance(
            expr.head, (Select, Singleton, EmptySet, Flatten)
        ) else None)

    top = go(query, {}, "$", False)
    return QueryFacts(
        card=top.card,
        selects=tuple(selects),
        generators=tuple(generators),
        dead_conditions=tuple(dead),
    )


# -- search-node bounds over the grouping encoding --------------------------


def component_node_bound(row_counts: Sequence[int]) -> int:
    """Sound node bound for one connected component.

    A deterministic backtracking search over atoms with ``c_i``
    candidate rows counts one node per *distinct consistent partial
    assignment* it reaches, and reaches each at most once; there are at
    most ``prod(1 + c_i) - 1`` non-empty ones (each atom contributes
    "absent" or one of its rows).  Holds for every ordering strategy —
    forward checking and AC-3 only remove nodes.
    """
    product = 1
    for count in row_counts:
        product *= 1 + count
    return product - 1


def target_row_bounds(sub: Any, witnesses: int) -> Dict[Tuple[str, int], int]:
    """Rows per ``(pred, arity)`` in the simulation target for *sub*.

    Mirrors :func:`repro.grouping.simulation.build_simulation_target`:
    one generic copy of every node's own atoms, plus ``witnesses``
    copies of ``full_body(path)`` per non-root path.  Deduplication in
    the real target only shrinks these counts.
    """
    counts: Counter = Counter()
    for node in sub.nodes():
        for atom in node.own_atoms:
            counts[(atom.pred, atom.arity)] += 1
    for path in sub.paths():
        if not path:
            continue
        for atom in sub.full_body(path):
            counts[(atom.pred, atom.arity)] += witnesses
    return dict(counts)


@dataclass(frozen=True)
class ComponentBound:
    """Per-component certificate entry.

    ``node_bound`` is the sound bound; ``estimate`` and ``strategy``
    are the same quantities ``ordering="cost"`` computes at runtime
    (over actual candidate counts, which these row bounds dominate).
    """

    atoms: int
    row_counts: Tuple[int, ...]
    node_bound: int
    estimate: int
    strategy: str

    def as_dict(self) -> Dict[str, Any]:
        return {
            "atoms": self.atoms,
            "row_counts": list(self.row_counts),
            "node_bound": _json_bound(self.node_bound),
            "estimate": _json_bound(self.estimate),
            "strategy": self.strategy,
        }


def _pinned_variables(sup: Any) -> FrozenSet[Any]:
    """Sup-side variables pre-bound before the component search starts.

    Value variables are pinned to the sub side's frozen value columns
    (the ``fixed`` argument of ``simulation_certificate``); atoms
    connected only through them decompose into separate components.
    """
    pinned = set()
    for node in sup.nodes():
        for __, term in node.values:
            if isinstance(term, Var):
                pinned.add(term)
    return frozenset(pinned)


def _atom_components(
    atoms: Sequence[Any], pinned: FrozenSet[Any]
) -> List[List[Any]]:
    """Connected components of *atoms* linked by shared unpinned vars."""
    indexed = list(enumerate(atoms))
    parent: Dict[int, int] = {i: i for i, __ in indexed}

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    by_var: Dict[Any, int] = {}
    for i, atom in indexed:
        for var in atom.variables():
            if var in pinned:
                continue
            if var in by_var:
                parent[find(i)] = find(by_var[var])
            else:
                by_var[var] = i
    groups: Dict[int, List[Any]] = {}
    for i, atom in indexed:
        groups.setdefault(find(i), []).append(atom)
    return [groups[root] for root in sorted(groups)]


def component_bounds(
    sub: Any, sup: Any, witnesses: int
) -> Tuple[ComponentBound, ...]:
    """Per-component bounds for simulating *sub* against *sup*."""
    rows = target_row_bounds(sub, witnesses)
    atoms = [atom for node in sup.nodes() for atom in node.own_atoms]
    pinned = _pinned_variables(sup)
    out = []
    for component in _atom_components(atoms, pinned):
        counts = tuple(
            rows.get((atom.pred, atom.arity), 0) for atom in component
        )
        out.append(
            ComponentBound(
                atoms=len(component),
                row_counts=counts,
                node_bound=component_node_bound(counts),
                estimate=int(component_cost_estimate(sorted(counts))),
                strategy=str(component_strategy(counts)),
            )
        )
    return tuple(out)


def _nonempty_bound(sub: Any) -> int:
    """Bound on nodes spent deciding ``_provably_nonempty`` per path.

    Each non-root path runs one search mapping the child body into the
    ground parent body with all parent variables fixed; every child
    atom has at most as many candidate rows as the parent body has
    atoms of its predicate.  One merged component over all child atoms
    dominates the per-component sum.
    """
    total = 0
    for path in sub.paths():
        if not path:
            continue
        parent_counts: Counter = Counter(
            (atom.pred, atom.arity) for atom in sub.full_body(path[:-1])
        )
        counts = [
            parent_counts.get((atom.pred, atom.arity), 0)
            for atom in sub.full_body(path)
        ]
        total += component_node_bound(counts)
    return total


@dataclass(frozen=True)
class CostCertificate:
    """A sound, falsifiable bound on one containment check's search.

    ``total_bound`` dominates the ``SearchCounters.nodes`` recorded
    around ``engine.contains`` for the same pair: ``search_bound``
    covers every (pattern × witness-stage × component) simulation
    search, ``nonempty_bound`` the per-path non-emptiness tests.  The
    AST-level ``fanout`` / ``output_cardinality`` facts (present when
    built through :func:`cost_certificate` rather than
    :func:`pair_certificate`) power the COQL008–011 lint rules.
    """

    name: str
    paths: int
    variables: int
    witness_stages: Tuple[int, ...]
    patterns: int
    patterns_enumerated: bool
    components: Tuple[ComponentBound, ...]
    search_bound: int
    nonempty_bound: int
    total_bound: int
    settled: Optional[bool] = None
    fanout: Tuple[Tuple[str, Bound], ...] = ()
    output_cardinality: Optional[Tuple[int, Bound]] = None
    facts: Optional[QueryFacts] = field(default=None, compare=False)

    @property
    def recommended_orderings(self) -> Tuple[str, ...]:
        return tuple(c.strategy for c in self.components)

    def as_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "name": self.name,
            "paths": self.paths,
            "variables": self.variables,
            "witness_stages": list(self.witness_stages),
            "patterns": self.patterns,
            "patterns_enumerated": self.patterns_enumerated,
            "components": [c.as_dict() for c in self.components],
            "search_bound": _json_bound(self.search_bound),
            "nonempty_bound": _json_bound(self.nonempty_bound),
            "total_bound": _json_bound(self.total_bound),
        }
        if self.settled is not None:
            payload["settled"] = self.settled
        if self.fanout:
            payload["fanout"] = {
                path: _json_bound(hi) for path, hi in self.fanout
            }
        if self.output_cardinality is not None:
            lo, hi = self.output_cardinality
            payload["output_cardinality"] = {
                "lo": lo,
                "hi": _json_bound(hi),
            }
        return payload

    def explain(self) -> str:
        lines = [
            "cost certificate: %s" % self.name,
            "  grouping tree: %d path(s), %d variable(s)"
            % (self.paths, self.variables),
        ]
        if self.settled is not None:
            lines.append(
                "  settled statically: %s (no search needed)"
                % ("contained" if self.settled else "not contained")
            )
            return "\n".join(lines)
        lines.append(
            "  witness stages: %s"
            % ", ".join(str(w) for w in self.witness_stages)
        )
        lines.append(
            "  obligation patterns: %d (%s)"
            % (
                self.patterns,
                "enumerated" if self.patterns_enumerated else
                "bounded, not enumerated",
            )
        )
        stage = self.witness_stages[-1] if self.witness_stages else 1
        lines.append(
            "  components (full pattern, %d witness(es)):" % stage
        )
        for position, comp in enumerate(self.components):
            lines.append(
                "    #%d: %d atom(s), rows %s -> bound %s, strategy %s"
                % (
                    position + 1,
                    comp.atoms,
                    list(comp.row_counts),
                    format_bound(comp.node_bound),
                    comp.strategy,
                )
            )
        lines.append("  search-node bound: %s" % format_bound(self.search_bound))
        lines.append(
            "  non-emptiness-test bound: %s" % format_bound(self.nonempty_bound)
        )
        lines.append("  total node bound: %s" % format_bound(self.total_bound))
        if self.output_cardinality is not None:
            lo, hi = self.output_cardinality
            lines.append(
                "  output cardinality: [%d, %s]" % (lo, format_bound(hi))
            )
        for path, hi in self.fanout:
            lines.append(
                "  fan-out %s: <= %s%s"
                % (
                    path,
                    format_bound(hi),
                    " (unbounded)" if hi == INF else "",
                )
            )
        return "\n".join(lines)


def _witness_stages(sup: Any, witnesses: Optional[int]) -> Tuple[int, ...]:
    if witnesses is not None:
        return (max(1, int(witnesses)),)
    escalated = max(1, len(sup.variables()))
    if escalated == 1:
        return (1,)
    return (1, escalated)


def pair_certificate(
    sub: Any,
    sup: Any,
    witnesses: Optional[int] = None,
    is_nonempty: Optional[Callable[[Any, Any], bool]] = None,
    name: Optional[str] = None,
) -> CostCertificate:
    """Certificate for one aligned grouping-query pair.

    *sub* and *sup* must have the same path set (the engine aligns them
    with ``paired_encoding`` before calling this).  *witnesses* pins a
    single witness stage; ``None`` models the engine's incremental
    escalation (stage 1 then ``max(1, |vars(sup)|)``).  *is_nonempty*
    replaces the module-level non-emptiness test — pass the engine's
    memoized version so the certificate enumerates exactly the
    obligation patterns the engine will.
    """
    from repro.coql.containment import _obligation_patterns, _provably_nonempty

    if is_nonempty is None:
        is_nonempty = _provably_nonempty
    stages = _witness_stages(sup, witnesses)
    optional = [p for p in sub.paths() if p and not is_nonempty(sub, p)]

    if len(optional) <= PATTERN_ENUMERATION_CAP:
        patterns = list(_obligation_patterns(sub, is_nonempty=is_nonempty))
        enumerated = True
        search_bound = 0
        for kept in patterns:
            sub_t = sub.truncate(kept)
            sup_t = sup.truncate(kept)
            for stage in stages:
                search_bound += sum(
                    comp.node_bound
                    for comp in component_bounds(sub_t, sup_t, stage)
                )
        pattern_count = len(patterns)
    else:
        # Too many optional paths to enumerate 2**k patterns: every
        # truncation is dominated by the full pair, so multiply.
        pattern_count = 2 ** len(optional)
        enumerated = False
        per_pattern = sum(
            comp.node_bound
            for stage in stages
            for comp in component_bounds(sub, sup, stage)
        )
        search_bound = pattern_count * per_pattern

    components = component_bounds(sub, sup, stages[-1])
    nonempty = _nonempty_bound(sub)
    return CostCertificate(
        name=name or "%s vs %s" % (sub.name, sup.name),
        paths=len(sub.paths()),
        variables=len(sup.variables()),
        witness_stages=stages,
        patterns=pattern_count,
        patterns_enumerated=enumerated,
        components=components,
        search_bound=search_bound,
        nonempty_bound=nonempty,
        total_bound=search_bound + nonempty,
    )


def _trivial_certificate(name: str, settled: bool) -> CostCertificate:
    return CostCertificate(
        name=name,
        paths=0,
        variables=0,
        witness_stages=(),
        patterns=0,
        patterns_enumerated=True,
        components=(),
        search_bound=0,
        nonempty_bound=0,
        total_bound=0,
        settled=settled,
    )


def _fold_union_certificates(
    name: str, certificates: List[CostCertificate]
) -> CostCertificate:
    """One certificate dominating a Sagiv–Yannakakis family check.

    The reduction decides at most every (sub branch, sup branch) pair,
    each bounded by its own pair certificate — so the sums below stay
    sound search bounds for the whole union-vs-union check.
    """
    return CostCertificate(
        name=name,
        paths=sum(c.paths for c in certificates),
        variables=sum(c.variables for c in certificates),
        witness_stages=max(
            (c.witness_stages for c in certificates), key=len
        ),
        patterns=sum(c.patterns for c in certificates),
        patterns_enumerated=all(c.patterns_enumerated for c in certificates),
        components=tuple(
            comp for c in certificates for comp in c.components
        ),
        search_bound=sum(c.search_bound for c in certificates),
        nonempty_bound=sum(c.nonempty_bound for c in certificates),
        total_bound=sum(c.total_bound for c in certificates),
    )


def cost_certificate(
    query: Any,
    schema: Any,
    against: Any = None,
    engine: Any = None,
    witnesses: Optional[int] = None,
    stats: Optional[DatabaseStatistics] = None,
) -> CostCertificate:
    """Certificate for a COQL query (optionally against a superquery).

    Runs the abstract interpreter over the parsed AST (attaching
    fan-out and output-cardinality facts), encodes through the engine's
    cached pipeline, aligns with ``paired_encoding`` exactly like
    ``contains``, and bounds the resulting search.  With no *against*,
    the self-containment pair is bounded — the canonical workload for
    "how expensive is checking against this query".

    Union queries are bounded family-wise: the branch-pair certificates
    of the Sagiv–Yannakakis reduction are summed (the reduction decides
    at most every pair), so ``analyze`` accepts the same query set the
    engine does.
    """
    from repro.coql.encode import paired_encoding
    from repro.coql.family import contains_union, union_branches
    from repro.coql.parser import parse_coql

    if engine is None:
        from repro.engine import default_engine

        engine = default_engine()

    ast = parse_coql(query) if isinstance(query, str) else query
    facts = interpret(ast, schema, stats)

    against_ast = (
        parse_coql(against) if isinstance(against, str) else against
    )
    if contains_union(ast) or (
        against_ast is not None and contains_union(against_ast)
    ):
        sub_branches = union_branches(ast)
        sup_branches = (
            union_branches(against_ast)
            if against_ast is not None
            else sub_branches
        )
        pair_certificates = [
            cost_certificate(
                sub_branch, schema, against=sup_branch, engine=engine,
                witnesses=witnesses, stats=stats,
            )
            for sub_branch in sub_branches
            for sup_branch in sup_branches
        ]
        core = _fold_union_certificates(
            "union(%d) vs union(%d)" % (len(sub_branches),
                                        len(sup_branches)),
            pair_certificates,
        )
        return replace(
            core,
            fanout=facts.fanout(),
            output_cardinality=(facts.card.lo, facts.card.hi),
            facts=facts,
        )

    sub_encoded = engine.prepare(query, schema, name="sub")
    sup_encoded = (
        engine.prepare(against, schema, name="sup")
        if against is not None
        else sub_encoded
    )
    name = (
        "%s vs %s" % (sub_encoded.query.name, sup_encoded.query.name)
        if not sub_encoded.is_empty and not sup_encoded.is_empty
        else "query"
    )
    sub_query, sup_query, verdict = paired_encoding(sub_encoded, sup_encoded)
    if verdict is not None:
        core = _trivial_certificate(name, bool(verdict))
    else:
        core = engine.pipeline().analyze_cost(
            sub_query, sup_query, witnesses
        )
    return replace(
        core,
        fanout=facts.fanout(),
        output_cardinality=(facts.card.lo, facts.card.hi),
        facts=facts,
    )
