"""The query-level analysis rules (COQL001 … COQL005, COQL007,
COQL012, COQL013).

Each rule is a function ``check(ctx, rule) -> iterable[Diagnostic]``
over an :class:`repro.analysis.context.AnalysisContext`; rules register
themselves with :mod:`repro.analysis.registry` at import time, which is
how :func:`repro.analysis.analyze` finds them.

The rules are grounded in the paper's decision procedure rather than
style: an unused generator is a silent cartesian factor (COQL001), a
contradictory body makes the query the constant empty set — and thereby
contained in *every* query (COQL002); disconnected generators blow up
the canonical database the simulation search walks (COQL003); possible
empty sets are exactly what forces the exponential truncation-pattern
case split of Theorem 4.1's procedure (COQL004); redundant subgoals are
the paper's own motivating application of containment (COQL005); and
COQL007 estimates the NP-hard search space (Theorem 5.1) before a
caller commits to a check.
"""

from repro.analysis.context import base_var, walk_selects
from repro.analysis.diagnostics import ERROR, INFO, WARNING
from repro.analysis.registry import Rule, register
from repro.coql.ast import Const, Select, VarRef
from repro.errors import ReproError

__all__ = [
    "check_unbound_or_unused",
    "check_unsatisfiable",
    "check_cartesian",
    "check_empty_set_hazard",
    "check_redundant",
    "check_complexity",
    "check_redundant_union_branch",
    "check_union_shape",
]


# -- COQL000: front-end failures ---------------------------------------

# Not a checkable rule: the code the analyzer reports parse,
# type-check, and encoding failures of the query itself under.  Parse
# and type errors are error-severity (the query is not a COQL query);
# encoding failures (outside the decidable fragment, schema mismatch)
# are warnings — the query may be perfectly good, the decision
# procedures just cannot take it.
register(Rule(
    "COQL000", "front-end-failure", ERROR,
    "the query fails the front end: parse error, type error, or "
    "outside the encodable fragment",
    paper="Sections 3 and 5.1 (COQL and its flat encoding)",
    kind="front-end",
))


# -- COQL001: unbound / unused generator variables ---------------------


def check_unbound_or_unused(ctx, rule):
    """Unbound variable references (error) and never-used generators
    (warning).

    An unused generator does not change *which* elements appear in a
    set-of-distinct-values answer, but it multiplies the body the
    decision procedures must match: it is a cartesian factor with no
    observable output, and usually a typo.
    """
    out = []
    for var, span, path in _unbound_refs(ctx.query):
        out.append(rule.diagnostic(
            "unbound variable %r: no enclosing generator binds it"
            % var,
            severity=ERROR, path=path, span=span,
        ))
    for select, path, __ in walk_selects(ctx.query):
        for position, (var, __src) in enumerate(select.generators):
            users = [src for __v, src in select.generators[position + 1:]]
            users.extend(side for cond in select.conditions for side in cond)
            users.append(select.head)
            if any(var in part.free_vars() for part in users):
                continue
            out.append(rule.diagnostic(
                "generator variable %r is never used; the generator only "
                "multiplies the query body" % var,
                severity=WARNING,
                path="%s.from[%d]" % (path, position),
                span=select.generators[position][1].span or select.span,
            ))
    return out


def _unbound_refs(query):
    """Every free variable occurrence: ``(name, span, path)``."""
    found = []

    def walk(expr, bound, path):
        if isinstance(expr, VarRef):
            if expr.name not in bound:
                found.append((expr.name, expr.span, path))
            return
        if isinstance(expr, Select):
            inner = set(bound)
            for position, (var, source) in enumerate(expr.generators):
                walk(source, frozenset(inner), "%s.from[%d]" % (path, position))
                inner.add(var)
            inner = frozenset(inner)
            for position, (left, right) in enumerate(expr.conditions):
                where = "%s.where[%d]" % (path, position)
                walk(left, inner, where)
                walk(right, inner, where)
            walk(expr.head, inner, path + ".head")
            return
        for position, child in enumerate(expr.children()):
            walk(child, bound, "%s[%d]" % (path, position))

    walk(query, frozenset(), "$")
    return found


register(Rule(
    "COQL001", "unbound-or-unused-variable", ERROR,
    "unbound variable reference, or a generator variable that is never "
    "used",
    paper="Section 3 (COQL well-formedness)",
    check=check_unbound_or_unused,
))


# -- COQL002: unsatisfiable body ---------------------------------------


def check_unsatisfiable(ctx, rule):
    """Contradictory equalities make a body unsatisfiable.

    When the *whole* query is the constant empty set the finding is an
    error — ``{} ⊑ Q'`` holds for every ``Q'``, so every containment
    check against it is vacuously true (exactly the short-circuit of
    :func:`repro.coql.encode.paired_encoding`); the verdict is taken
    from the encoder, so the error fires iff ``contains(sup, q)`` is
    True for arbitrary *sup*.  A contradiction confined to a nested
    subquery only pins that component to ``{}`` and is a warning.
    """
    out = []
    flagged_spans = set()
    for select, path, inherited in walk_selects(ctx.query):
        witness = _contradiction(tuple(inherited) + select.conditions)
        if witness is None:
            continue
        left, right = witness
        span = left.span or right.span or select.span
        flagged_spans.add(span)
        out.append(rule.diagnostic(
            "unsatisfiable conditions: %r = %r can never hold; this "
            "subquery always produces the empty set" % (left, right),
            severity=WARNING, path=path, span=span,
        ))
    encoded = ctx.encoded()
    if encoded is not None and encoded.is_empty:
        spans = sorted(span for span in flagged_spans if span is not None)
        span = spans[0] if spans else ctx.query.span
        out.append(rule.diagnostic(
            "the query is the constant empty set, so it is contained in "
            "every comparable query and every containment check against "
            "it is vacuous",
            severity=ERROR, path="$", span=span,
        ))
    return out


def _contradiction(conditions):
    """The first condition that closes a constant contradiction, or None.

    Union-find over the *syntactic* terms of the equalities; two
    distinct constants in one class are unsatisfiable.  Purely
    structural — sound (terms are only merged when some condition chain
    equates them) but weaker than the encoder's unification, which also
    normalizes paths; the encoder's verdict is what upgrades a root
    contradiction to an error.
    """
    parent = {}

    def find(term):
        while term in parent:
            term = parent[term]
        return term

    for left, right in conditions:
        root_l, root_r = find(left), find(right)
        if root_l == root_r:
            continue
        if isinstance(root_l, Const) and isinstance(root_r, Const):
            return (left, right)
        # Constants win as representatives so later merges see them.
        if isinstance(root_r, Const):
            root_l, root_r = root_r, root_l
        parent[root_r] = root_l
    return None


register(Rule(
    "COQL002", "unsatisfiable-body", ERROR,
    "contradictory constant equalities make the body unsatisfiable "
    "(the query or a component is the constant empty set)",
    paper="Section 4 (containment; {} is contained in everything)",
    check=check_unsatisfiable,
))


# -- COQL003: cartesian-product generators -----------------------------


def check_cartesian(ctx, rule):
    """Generators with no joining condition form a cartesian product.

    The simulation search of the decision procedure works over canonical
    databases whose size is the *product* of the generator relations'
    frozen bodies (Section 5.2), so an unjoined generator multiplies the
    NP-hard search space for nothing.  Two generators are considered
    joined when a chain of ``where`` equalities links them (possibly
    through a constant or an outer variable) or when one's source
    expression depends on the other (dependent generators are
    correlated, not a product).
    """
    out = []
    for select, path, __ in walk_selects(ctx.query):
        if len(select.generators) < 2:
            continue
        local = [var for var, __src in select.generators]
        components = _join_components(select, frozenset(local))
        if len(components) < 2:
            continue
        groups = " x ".join(
            "{%s}" % ", ".join(sorted(group)) for group in components
        )
        out.append(rule.diagnostic(
            "generators %s have no joining condition: the select is a "
            "cartesian product, which multiplies the simulation search "
            "space" % groups,
            path=path, span=select.span,
        ))
    return out


def _join_components(select, local):
    parent = {}

    def find(key):
        while key in parent:
            key = parent[key]
        return key

    def union(a, b):
        root_a, root_b = find(a), find(b)
        if root_a != root_b:
            parent[root_a] = root_b

    def key_of(expr):
        base = base_var(expr)
        if base in local:
            return base
        if isinstance(expr, Const):
            return ("const", expr.value)
        return "outer"

    for position, (var, source) in enumerate(select.generators):
        for earlier, __src in select.generators[:position]:
            if earlier in source.free_vars():
                union(var, earlier)
    for left, right in select.conditions:
        union(key_of(left), key_of(right))
    components = {}
    for var in local:
        components.setdefault(find(var), set()).add(var)
    return sorted(components.values(), key=min)


register(Rule(
    "COQL003", "cartesian-product", WARNING,
    "a select joins none of its generators; the body is a cartesian "
    "product",
    paper="Section 5.2 (canonical databases; simulation search)",
    check=check_cartesian,
))


# -- COQL004: empty-set hazard -----------------------------------------


def check_empty_set_hazard(ctx, rule):
    """Components that may be empty force the exponential case split.

    For empty-set-free queries one simulation obligation decides
    containment and weak equivalence *is* equivalence; every set node
    that is not provably non-empty doubles the truncation patterns the
    procedure must check (up to ``2^k``) and keeps :func:`equivalent`
    out of reach.  Silent exactly when
    :meth:`ContainmentEngine.empty_set_free` holds.
    """
    encoded = ctx.encoded()
    if encoded is None:
        return []
    if ctx.engine.empty_set_free(ctx.query, ctx.schema):
        return []
    out = []
    if encoded.is_empty:
        return [rule.diagnostic(
            "the query is always the empty set",
            path="$", span=ctx.query.span,
        )]
    for path in sorted(encoded.empty_paths):
        out.append(rule.diagnostic(
            "set component %s is always empty; only weak equivalence is "
            "decidable for this query" % _grouping_path(path),
            path=_grouping_path(path),
        ))
    query = encoded.query
    hazards = [
        path for path in sorted(query.paths())
        if path and not ctx.engine.provably_nonempty(query, path)
    ]
    for path in hazards:
        out.append(rule.diagnostic(
            "set component %s is not provably non-empty; each such "
            "component doubles the truncation patterns containment must "
            "check" % _grouping_path(path),
            path=_grouping_path(path),
        ))
    return out


def _grouping_path(path):
    return "$" + "".join("/" + label for label in path)


register(Rule(
    "COQL004", "empty-set-hazard", WARNING,
    "the query can produce empty sets, forcing the exponential "
    "truncation-pattern case split and blocking exact equivalence",
    paper="Theorem 4.2 (empty-set-free queries)",
    check=check_empty_set_hazard,
))


# -- COQL005: redundant subgoal (expensive) ----------------------------


def check_redundant(ctx, rule):
    """A generator or condition the query does not need.

    Runs :func:`repro.coql.minimize.minimize_coql`, which calls the
    containment oracle itself — hence ``expensive``: the engine's
    pre-check skips it, ``repro lint`` runs it unless ``--no-minimize``.
    """
    from repro.coql.minimize import minimize_coql

    try:
        minimized = minimize_coql(
            ctx.query, ctx.schema, witnesses=ctx.config.witnesses,
            engine=ctx.engine,
        )
    except ReproError:
        return []
    if minimized == ctx.query:
        return []
    gens, conds = _body_size(ctx.query)
    min_gens, min_conds = _body_size(minimized)
    return [rule.diagnostic(
        "query is not minimal: an equivalent query needs %d fewer "
        "generator(s) and %d fewer condition(s): %r"
        % (gens - min_gens, conds - min_conds, minimized),
        path="$", span=ctx.query.span,
    )]


def _body_size(query):
    gens = conds = 0
    for select, __, ___ in walk_selects(query):
        gens += len(select.generators)
        conds += len(select.conditions)
    return gens, conds


register(Rule(
    "COQL005", "redundant-subgoal", INFO,
    "a generator or condition is redundant; minimization finds a "
    "smaller weakly equivalent query",
    paper="Section 1 (redundant subgoals as motivating application)",
    expensive=True,
    check=check_redundant,
))


# -- COQL007: complexity estimate --------------------------------------


def check_complexity(ctx, rule):
    """Estimate the containment search space against the budget.

    Deciding simulation of grouping queries is NP-complete (Theorem
    5.1), and possibly-empty components add a factor of up to ``2^k``
    truncation patterns on top.  The estimate is deliberately crude —
    (patterns) x Σ |body|^|body| per set node, the brute-force
    assignment count — and only its order of magnitude matters: past
    ``config.complexity_budget`` a check against a same-shaped query
    may be impractical without witnesses bounds or timeouts.
    """
    encoded = ctx.encoded()
    if encoded is None or encoded.is_empty:
        return []
    query = encoded.query
    optional = [
        path for path in query.paths()
        if path and not ctx.engine.provably_nonempty(query, path)
    ]
    patterns = 2 ** len(optional)
    assignments = 0
    for path in query.paths():
        body = len(query.full_body(path))
        assignments += max(1, body) ** max(1, body)
    estimate = patterns * assignments
    if estimate <= ctx.config.complexity_budget:
        return []
    return [rule.diagnostic(
        "estimated containment search space ~%.1e candidate assignments "
        "(%d truncation pattern(s) x %d homomorphism candidates) exceeds "
        "the budget %.1e; simulation is NP-complete, consider witnesses "
        "bounds or a timeout" % (
            float(estimate), patterns, assignments,
            float(ctx.config.complexity_budget),
        ),
        path="$", span=ctx.query.span,
    )]


register(Rule(
    "COQL007", "complexity-budget", WARNING,
    "the estimated containment search space exceeds the configured "
    "budget",
    paper="Theorem 5.1 (simulation is NP-complete)",
    check=check_complexity,
))


# -- COQL012: redundant union branch (expensive) -----------------------


def check_redundant_union_branch(ctx, rule):
    """A union branch contained in the rest of the union is dead weight.

    Minimization-backed, like COQL005: the branches the greedy
    Sagiv–Yannakakis minimizer (drop any branch contained in a
    *surviving* sibling, repeat to fixpoint) would remove are flagged —
    never both of a mutually-equivalent pair, since one survivor always
    keeps serving the other's answers.  Each pairwise test is a full
    engine containment check (memoized under ``branch_verdict``), hence
    ``expensive``; declared inclusion dependencies
    (``AnalysisConfig.constraints``) sharpen the verdicts via the
    chase.
    """
    from repro.coql.family import contains_union, union_branches

    if not contains_union(ctx.query):
        return []
    try:
        branches = union_branches(ctx.query)
    except ReproError:
        return []  # non-linear union placement: the front end reports it
    if len(branches) < 2:
        return []
    constraints = ctx.config.constraints or None

    def covered(candidate, sibling):
        try:
            return ctx.engine.contains(
                sibling, candidate, ctx.schema,
                witnesses=ctx.config.witnesses, constraints=constraints,
            )
        except ReproError:
            return False

    dropped = []
    kept = list(range(len(branches)))
    changed = True
    while changed:
        changed = False
        for position, index in enumerate(kept):
            rest = kept[:position] + kept[position + 1:]
            winner = next(
                (j for j in rest if covered(branches[index], branches[j])),
                None,
            )
            if winner is not None:
                dropped.append((index, winner))
                kept = rest
                changed = True
                break
    out = []
    for index, winner in sorted(dropped):
        out.append(rule.diagnostic(
            "union branch %d is contained in branch %d; dropping it "
            "leaves an equivalent union" % (index + 1, winner + 1),
            path="$.union[%d]" % index,
            span=branches[index].span or ctx.query.span,
        ))
    return out


register(Rule(
    "COQL012", "redundant-union-branch", INFO,
    "a union branch is contained in a sibling branch; the union is "
    "equivalent without it",
    paper="Sagiv-Yannakakis union reduction (related work [36])",
    expensive=True,
    check=check_redundant_union_branch,
))


# -- COQL013: union branch shape mismatch ------------------------------


def check_union_shape(ctx, rule):
    """Union branches whose head shapes do not join.

    COQL types a union body as the join of its branches' set types;
    branches with different head arities (or shapes that do not join at
    all) make the union ill-typed, and every containment check against
    it raises.  The finding carries the type checker's span, which
    points at the first offending branch.
    """
    from repro.coql.ast import UnionBody
    from repro.coql.typecheck import typecheck
    from repro.errors import TypeCheckError

    def has_union(expr):
        if isinstance(expr, UnionBody):
            return True
        return any(has_union(child) for child in expr.children())

    if not has_union(ctx.query):
        return []
    try:
        typecheck(ctx.query, ctx.schema)
    except TypeCheckError as exc:
        if str(exc).startswith("union branch"):
            return [rule.diagnostic(
                str(exc), path="$", span=getattr(exc, "span", None),
            )]
    return []


register(Rule(
    "COQL013", "union-branch-shape-mismatch", ERROR,
    "union branches have incompatible head shapes (different arities, "
    "or set types that do not join)",
    paper="Section 3 (union bodies type as the join of branch types)",
    check=check_union_shape,
))
