"""The shared context one analysis run hands to every rule.

:class:`AnalysisContext` owns the parsed query, the normalized schema,
the :class:`repro.engine.ContainmentEngine` whose memo tables the rules
share (prepared encodings and provably-non-empty verdicts are decided
once per engine, no matter how many rules ask), and the
:class:`AnalysisConfig` knobs.

The encoding is computed lazily and at most once: rules that need the
grouping-tree view (COQL004, COQL007) call :meth:`AnalysisContext.encoded`,
which returns None when the query falls outside the encodable fragment
(the front-end failure is reported separately as ``COQL000``).
"""

from repro.coql.ast import Select, VarRef

__all__ = ["AnalysisConfig", "AnalysisContext", "walk_selects", "base_var"]


class AnalysisConfig:
    """Tunable knobs for one analysis run.

    :param complexity_budget: COQL007 warns when the estimated
        homomorphism search space of a containment check against a
        same-shaped query exceeds this many candidate assignments.
    :param expensive: run rules flagged expensive (COQL005, which calls
        the minimizer and therefore the containment oracle itself).  The
        engine's opt-in pre-check passes False so analysis stays a
        cheap companion to the check it precedes.
    :param witnesses: witness-copy count forwarded to the minimizer and
        the cost certificate (COQL011).
    :param stats: optional
        :class:`repro.analysis.interp.DatabaseStatistics` sampled from a
        witness database; sharpens the interpreter's cardinality
        intervals and enables COQL009's value-set refutations.
    :param constraints: tuple of
        :class:`repro.constraints.InclusionDependency` declarations the
        analyzed queries hold under; containment-backed rules (COQL005,
        COQL012) decide their oracle calls with the chase enabled.
    """

    __slots__ = ("complexity_budget", "expensive", "witnesses", "stats",
                 "constraints")

    def __init__(self, complexity_budget=10**8, expensive=True,
                 witnesses=None, stats=None, constraints=()):
        self.complexity_budget = complexity_budget
        self.expensive = expensive
        self.witnesses = witnesses
        self.stats = stats
        self.constraints = tuple(constraints)

    def __repr__(self):
        return "AnalysisConfig(budget=%d, expensive=%s)" % (
            self.complexity_budget, self.expensive)


_UNSET = object()


class AnalysisContext:
    """Everything a query rule may consult.

    Attributes:
        query: the parsed :class:`repro.coql.ast.Expr`.
        schema: normalized ``{relation: RecordType}``.
        engine: the :class:`ContainmentEngine` sharing memo tables.
        config: the :class:`AnalysisConfig`.
        front_end_error: the :class:`ReproError` raised while encoding
            the query, when there was one (rules needing the encoding
            skip themselves; the analyzer reports it as COQL000).
    """

    def __init__(self, query, schema, engine, config):
        self.query = query
        self.schema = schema
        self.engine = engine
        self.config = config
        self.front_end_error = None
        self._encoded = _UNSET

    def encoded(self):
        """The query's :class:`EncodedQuery`, or None when unavailable.

        A union body has no single encoding — the engine decides it per
        branch — so for union queries this returns None *without* a
        front-end error as long as the union typechecks and every branch
        encodes.  Union shape mismatches are left to COQL013, which
        owns that wording; any other branch failure still surfaces as
        COQL000.
        """
        from repro.errors import ReproError, TypeCheckError

        if self._encoded is _UNSET:
            from repro.coql.family import contains_union, union_branches

            if contains_union(self.query):
                self._encoded = None
                try:
                    from repro.coql.typecheck import typecheck

                    typecheck(self.query, self.schema)
                    for branch in union_branches(self.query):
                        self.engine.prepare(branch, self.schema)
                except TypeCheckError as exc:
                    if not str(exc).startswith("union branch"):
                        self.front_end_error = exc
                except ReproError as exc:
                    self.front_end_error = exc
                return self._encoded
            try:
                self._encoded = self.engine.prepare(self.query, self.schema)
            except ReproError as exc:
                self.front_end_error = exc
                self._encoded = None
        return self._encoded

    def selects(self):
        """Every Select node: ``(select, ast_path, inherited_conditions)``.

        *inherited_conditions* are the ``where`` equalities of enclosing
        selects that still constrain this node — conditions mentioning a
        variable this select rebinds are dropped, so structural equality
        of variable references never conflates distinct bindings.
        """
        return tuple(walk_selects(self.query))


def walk_selects(expr, path="$", inherited=()):
    """Yield ``(select, path, inherited_conditions)`` in pre-order.

    Conditions are inherited down the *head* only: after normalization
    (generator unnesting) every surviving nested subquery lives in the
    head, and a head-nested subquery's group is computed per outer row,
    so the outer equalities genuinely constrain it.  Generator sources
    are walked with no inheritance — their sets exist before the outer
    ``where`` filters the joined rows.
    """
    if isinstance(expr, Select):
        rebound = {var for var, __ in expr.generators}
        kept = tuple(
            cond for cond in inherited
            if not (_names(cond[0]) | _names(cond[1])) & rebound
        )
        yield expr, path, kept
        for position, (__, source) in enumerate(expr.generators):
            sub_path = "%s.from[%d]" % (path, position)
            for found in walk_selects(source, sub_path, ()):
                yield found
        for position, (left, right) in enumerate(expr.conditions):
            sub_path = "%s.where[%d]" % (path, position)
            for side in (left, right):
                for found in walk_selects(side, sub_path, ()):
                    yield found
        head_inherited = kept + expr.conditions
        for found in walk_selects(expr.head, path + ".head", head_inherited):
            yield found
        return
    for position, child in enumerate(expr.children()):
        sub_path = "%s[%d]" % (path, position)
        for found in walk_selects(child, sub_path, inherited):
            yield found


def base_var(expr):
    """The variable name at the root of a projection chain, or None.

    ``x.a.b`` → ``"x"``; constants and relation-rooted paths → None.
    """
    from repro.coql.ast import Proj

    while isinstance(expr, Proj):
        expr = expr.expr
    if isinstance(expr, VarRef):
        return expr.name
    return None


def _names(expr):
    return set(expr.free_vars())
