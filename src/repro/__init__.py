"""repro — containment and equivalence for queries with complex objects.

A production-quality reproduction of Alon Y. Levy and Dan Suciu,
*Deciding Containment for Queries with Complex Objects* (PODS 1997).

Public API highlights
---------------------

* ``repro.objects`` — complex-object values, types, the Hoare containment
  order, nested databases, and the index encoding to flat relations.
* ``repro.cq`` — classical conjunctive queries (Chandra–Merlin baseline).
* ``repro.grouping`` — conjunctive queries with grouping; the paper's
  simulation and strong-simulation decision procedures (NP-complete).
* ``repro.coql`` — the COQL language: parsing, typing, evaluation,
  normalization, and the containment / weak-equivalence / equivalence
  deciders (Theorems 4.1 and 4.2).
* ``repro.algebra`` — nested relational algebra (Thomas–Fischer style)
  and the nest/unnest-sequence equivalence decider (the [24] problem).
* ``repro.aggregates`` — queries with grouping and aggregation;
  equivalence with uninterpreted aggregates (Section 7).
"""

__version__ = "1.0.0"

from repro.errors import (
    ReproError,
    ValueConstructionError,
    SchemaError,
    TypeCheckError,
    ParseError,
    EvaluationError,
    UnsupportedQueryError,
    IncomparableQueriesError,
)

__all__ = [
    "__version__",
    "ReproError",
    "ValueConstructionError",
    "SchemaError",
    "TypeCheckError",
    "ParseError",
    "EvaluationError",
    "UnsupportedQueryError",
    "IncomparableQueriesError",
]
