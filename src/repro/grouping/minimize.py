"""Minimization of grouping queries.

Lifts conjunctive-query minimization (cores) to grouping-query trees:
repeatedly drop a body atom of some node while the tree stays
simulation-equivalent (simulated in both directions) to the original.
Simulation equivalence is the grouping-level analogue of weak
equivalence, so the result answers the paper's "find redundant
subgoals" motivation at the level the decision procedures operate on.
"""

from repro.grouping.query import GroupingNode, GroupingQuery
from repro.grouping.simulation import is_simulated

__all__ = ["minimize_grouping", "simulation_equivalent"]


def simulation_equivalent(first, second, witnesses=None):
    """Simulation in both directions (grouping-level weak equivalence)."""
    return is_simulated(first, second, witnesses=witnesses) and is_simulated(
        second, first, witnesses=witnesses
    )


def minimize_grouping(query, witnesses=None):
    """Drop redundant body atoms; the result is simulation-equivalent.

    Greedy fixpoint over all (node, atom) pairs.  Atoms whose removal
    would unbind a value or index variable are skipped up front; the
    rest are removed whenever both simulation directions survive.
    """
    current = query
    changed = True
    while changed:
        changed = False
        for candidate in _atom_removals(current):
            if simulation_equivalent(current, candidate, witnesses=witnesses):
                current = candidate
                changed = True
                break
    return current


def _atom_removals(query):
    """Yield copies of *query* with one own-atom of one node removed."""
    paths = list(query.paths())
    for path in paths:
        node = query.node_at(path)
        for index in range(len(node.own_atoms)):
            rebuilt = _rebuild_without(query, path, index)
            if rebuilt is not None:
                yield rebuilt


def _rebuild_without(query, target_path, atom_index):
    def walk(node, path):
        own_atoms = node.own_atoms
        if path == target_path:
            own_atoms = own_atoms[:atom_index] + own_atoms[atom_index + 1:]
        children = tuple(
            walk(child, path + (child.label,)) for child in node.children
        )
        return GroupingNode(
            node.label, own_atoms, dict(node.values), node.index, children
        )

    try:
        return GroupingQuery(walk(query.root, ()), query.name)
    except Exception:
        return None  # removal unbinds a value/index variable
