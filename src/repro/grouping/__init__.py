"""Conjunctive queries with grouping and the simulation conditions.

This package is the technical core of the paper (Sections 5 and 6).
Complex objects are encoded as flat relations with *indexes*; a COQL
query becomes a tree of conjunctive queries whose heads carry index
variables (:class:`GroupingQuery`).  Containment of COQL queries then
reduces to **simulation** between such trees, and equivalence to
**strong simulation** — conditions with ``d+1`` quantifier alternations
at nesting depth ``d``, both decidable and NP-complete.

* :mod:`repro.grouping.query` — the grouping-query trees.
* :mod:`repro.grouping.semantics` — nested-group evaluation on flat DBs.
* :mod:`repro.grouping.simulation` — the certificate-based decision
  procedure for simulation (extended containment mappings with witness
  copies).
* :mod:`repro.grouping.strong` — strong simulation.
* :mod:`repro.grouping.bruteforce` — independent semantic checkers used
  to validate the syntactic procedures (canonical databases + direct
  evaluation of the quantifier alternation).
"""

from repro.grouping.query import GroupingNode, GroupingQuery, truncation_problems
from repro.grouping.semantics import evaluate_grouping, node_groups
from repro.grouping.simulation import (
    simulation_certificate,
    is_simulated,
    SimulationCertificate,
)
from repro.grouping.strong import strong_simulation_certificate, is_strongly_simulated
from repro.grouping.minimize import minimize_grouping, simulation_equivalent
from repro.grouping.bruteforce import (
    semantic_simulates,
    semantic_strongly_simulates,
    canonical_databases,
    check_simulation_on_canonical,
    check_strong_simulation_on_canonical,
)

__all__ = [
    "GroupingNode",
    "GroupingQuery",
    "truncation_problems",
    "evaluate_grouping",
    "node_groups",
    "simulation_certificate",
    "is_simulated",
    "SimulationCertificate",
    "strong_simulation_certificate",
    "is_strongly_simulated",
    "minimize_grouping",
    "simulation_equivalent",
    "semantic_simulates",
    "semantic_strongly_simulates",
    "canonical_databases",
    "check_simulation_on_canonical",
    "check_strong_simulation_on_canonical",
]
