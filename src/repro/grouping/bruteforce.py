"""Independent semantic checks for simulation and strong simulation.

These implement the paper's conditions *directly from their definitions*
(quantifier alternations evaluated over concrete databases) and are used
to validate the certificate-based procedures in
:mod:`repro.grouping.simulation` and :mod:`repro.grouping.strong`:

* :func:`semantic_simulates` — evaluates the ∀I ∃I' ∀rows condition on
  one database, searching over uniform index-correspondence choices.
* :func:`semantic_strongly_simulates` — the strong condition (chosen
  groups must be *equal*); at the level of evaluated complex objects
  this is plain membership of every answer element, recursively.
* :func:`canonical_databases` — the canonical family ("generic row plus
  k interchangeable witness rows per group") on which a semantic failure
  refutes simulation and a semantic success implies the certificate
  exists (completeness side of the reconstruction).

Falsification on *any* database refutes the ∀-database conditions, so
random databases (see ``repro.workloads``) give an unbounded supply of
soundness tests.
"""

from repro.cq.query import atoms_to_database
from repro.grouping.semantics import node_groups, evaluate_grouping
from repro.grouping.simulation import build_simulation_target

__all__ = [
    "semantic_simulates",
    "semantic_strongly_simulates",
    "canonical_databases",
    "check_simulation_on_canonical",
    "check_strong_simulation_on_canonical",
]


def semantic_simulates(sub, sup, database, max_choices=2000000):
    """Evaluate the simulation condition on one concrete database.

    Searches for uniform index choices: for each index value of each node
    of *sub*, one index value of the matched node of *sup*, such that
    every row of every (chain-reachable) sub group maps to a row of the
    chosen sup group with equal values and correspondingly-chosen child
    keys.

    Exponential in the number of distinct index values (it is a direct
    reading of the ∀I ∃I' ∀rows formula) — use only on small databases.
    """
    sub.require_same_shape(sup)
    sub_groups = node_groups(sub, database)
    sup_groups = node_groups(sup, database)
    sub_paths = sub.paths()
    memo = {}
    active_rows = _active_rows(sub, sub_groups)

    def coverable(path, sub_key, sup_key):
        """The *active* rows of group *sub_key* of sub's node are covered
        by group *sup_key* of sup's, with uniform child choices.

        Only active rows enter the check: the simulation implication's
        hypothesis requires content along *every* branch below a row, so
        a row with an unrealizable child key never constrains anything
        (it is exactly the situation the truncated obligations of the
        containment test handle separately).
        """
        state = (path, sub_key, sup_key)
        if state in memo:
            return memo[state]
        sub_node = sub_paths[path]
        sub_rows = active_rows[path].get(sub_key, frozenset())
        sup_rows = sup_groups[path].get(sup_key, frozenset())
        if not sub_rows:
            memo[state] = True
            return True
        if not sup_rows:
            memo[state] = False
            return False
        n_children = len(sub_node.children)
        # Distinct sub child keys per child position (active rows only).
        used = [sorted({row[1][c] for row in sub_rows}) for c in range(n_children)]
        sup_keys = [
            sorted({row[1][c] for row in sup_rows}) for c in range(n_children)
        ]
        # Candidate images per (child position, sub child key).
        slots = []
        for c in range(n_children):
            child_path = path + (sub_node.children[c].label,)
            for key in used[c]:
                candidates = [
                    sup_key_c
                    for sup_key_c in sup_keys[c]
                    if coverable(child_path, key, sup_key_c)
                ]
                if not candidates:
                    memo[state] = False
                    return False
                slots.append(((c, key), candidates))
        result = _choice_search(slots, sub_rows, sup_rows, max_choices)
        memo[state] = result
        return result

    return coverable((), (), ())


def _active_rows(query, groups):
    """Per path, the groups restricted to their *active* rows.

    A row is active when every one of its child keys is realizable; a
    key is realizable when its group contains at least one active row
    (leaf rows are always active).  Active rows are exactly the rows a
    full chain of the simulation hypothesis can pass through.
    """
    paths = query.paths()
    out = {}

    def realizable(path, key):
        return bool(active(path, key))

    def active(path, key):
        cache = out.setdefault(path, {})
        if key in cache:
            return cache[key]
        cache[key] = frozenset()  # cycle-safe placeholder (paths are acyclic)
        node = paths[path]
        kept = []
        for row in groups[path].get(key, frozenset()):
            __, child_keys = row
            if all(
                realizable(path + (child.label,), child_key)
                for child, child_key in zip(node.children, child_keys)
            ):
                kept.append(row)
        cache[key] = frozenset(kept)
        return cache[key]

    for path in paths:
        for key in groups[path]:
            active(path, key)
        out.setdefault(path, {})
    return out


def _choice_search(slots, sub_rows, sup_rows, max_choices):
    """Backtrack over child-key choice functions until rows line up.

    A *slot* is one (child position, sub child key) pair together with
    its candidate sup child keys; an assignment of all slots is a uniform
    choice function.  The search assigns slots depth-first and prunes
    with a per-row consistency check: every sub row must still have at
    least one sup row with equal values whose child keys agree with the
    assigned slots.
    """
    if not slots:
        return all((values, ()) in sup_rows for values, __ in sub_rows)
    # Most-constrained slots first keeps the backtracking shallow.
    slots = sorted(slots, key=lambda slot: len(slot[1]))

    sup_by_values = {}
    for values, child_keys in sup_rows:
        sup_by_values.setdefault(values, []).append(child_keys)

    rows = []
    for values, child_keys in sub_rows:
        options = sup_by_values.get(values)
        if not options:
            return False
        rows.append((tuple(enumerate(child_keys)), options))

    assignment = {}
    steps = [0]

    def consistent():
        for slot_list, options in rows:
            hit = False
            for candidate in options:
                if all(
                    assignment.get((c, key), candidate[c]) == candidate[c]
                    for c, key in slot_list
                ):
                    hit = True
                    break
            if not hit:
                return False
        return True

    def dfs(position):
        steps[0] += 1
        if steps[0] > max_choices:
            raise RuntimeError(
                "semantic simulation check exceeded max_choices=%d" % max_choices
            )
        if position == len(slots):
            return True
        slot, candidates = slots[position]
        for choice in candidates:
            assignment[slot] = choice
            if consistent() and dfs(position + 1):
                return True
            del assignment[slot]
        return False

    return dfs(0)


def semantic_strongly_simulates(sub, sup, database):
    """Evaluate the strong-simulation condition on one database.

    Strong simulation demands the chosen sup group be *equal* to the sub
    group; at the level of evaluated complex objects this is element-of,
    recursively, restricted to the *active* part of the sub answer —
    elements with an empty set component (recursively) never enter the
    implication's hypothesis, so they impose nothing (as in
    :func:`semantic_simulates`; at depth ≤ 2 the active projection keeps
    every element's groups intact, making the check exact).
    """
    sub.require_same_shape(sup)
    sub_answer = evaluate_grouping(sub, database)
    sup_answer = evaluate_grouping(sup, database)
    return all(
        element in sup_answer
        for element in sub_answer
        if _value_is_active(element)
    )


def _value_is_active(element):
    """True when a full hypothesis chain passes through the element:
    every set component contains, recursively, an active member."""
    from repro.objects.values import Record, CSet

    if not isinstance(element, Record):
        return True
    for __, component in element.items():
        if isinstance(component, CSet):
            if not any(_value_is_active(member) for member in component):
                return False
    return True


def canonical_databases(sub, sup=None, max_witnesses=None):
    """The canonical database family for testing ``sub ⊴ sup``.

    Yields ``(k, database)`` for k = 0 .. K where K defaults to
    ``|vars(sup)|`` (the completeness bound) or 2 when *sup* is omitted.
    Each database is the frozen generic body of *sub* plus k witness rows
    per group.
    """
    if max_witnesses is None:
        max_witnesses = max(1, len(sup.variables())) if sup is not None else 2
    for k in range(max_witnesses + 1):
        atoms, __ = build_simulation_target(sub, k)
        yield k, atoms_to_database(atoms)


def check_simulation_on_canonical(sub, sup, max_witnesses=None):
    """Semantic simulation over the whole canonical family of *sub*.

    Agrees with :func:`repro.grouping.simulation.is_simulated` (this is
    the completeness check the tests exercise).
    """
    return all(
        semantic_simulates(sub, sup, db)
        for __, db in canonical_databases(sub, sup, max_witnesses)
    )


def check_strong_simulation_on_canonical(sub, sup, max_witnesses=None):
    """Semantic strong simulation over the canonical family of *sub*."""
    return all(
        semantic_strongly_simulates(sub, sup, db)
        for __, db in canonical_databases(sub, sup, max_witnesses)
    )
