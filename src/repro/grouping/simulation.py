"""The simulation decision procedure (paper, Section 5).

``Q ⊴ Q'`` (*Q is simulated by Q'*) iff for every database each group of
Q is contained in some group of Q', with the index correspondence chosen
uniformly: at nesting depth *d* the condition has *d+1* quantifier
alternations, e.g. for depth 2::

    ∀I ∃I' ∀S ∀C .  Q1(S,I) ∧ Q2(I,C)  ⟹  Q'1(S,I') ∧ Q'2(I',C)

The paper shows the condition is decidable (its negation falls in Class
1.2 of [19]) and, the new result, NP-complete.  The NP certificate is an
**extended containment mapping**: a homomorphism φ from Q' into the body
of Q augmented with *witness copies*:

* the *generic copy* — Q's full tree body, frozen;
* for every set node *n* of Q, *k* fresh copies of *n*'s full body that
  share exactly the index variables of *n* and of *n*'s parent with the
  generic copy (they are extra rows in the same group).

φ must (1) map every atom of Q' into this augmented body, (2) map Q's
value columns identically onto the generic copy's value columns, and
(3) map each index variable of Q' at node *n* only to values available
when ``I'_n`` is chosen: generic index values along *n*'s chain, witness
values of copies at *n* or its ancestors, and constants — never to
row-private values of the generic copy.

Soundness: pin one satisfying assignment per witness copy (they exist
whenever the group chain is non-empty); the resulting ``I'_n`` is then
uniform across all rows of the group, and φ extends every row assignment
to a proof of membership in the chosen Q'-group.  Completeness: on the
canonical database "generic row + k interchangeable witness rows per
group", an automorphism/pigeonhole argument relocates any semantic
covering onto a certificate, for ``k = |vars(Q')|``.

The procedures here are validated against independent semantic checks in
:mod:`repro.grouping.bruteforce` (see tests).
"""

from repro.errors import ReproError
from repro.cq.terms import Const, is_var
from repro.cq.query import frozen_constant
from repro.cq.homomorphism import compile_target, find_homomorphism

__all__ = [
    "SimulationCertificate",
    "SimulationTarget",
    "simulation_certificate",
    "is_simulated",
    "build_simulation_target",
    "simulation_target",
]


class SimulationCertificate:
    """A successful extended containment mapping.

    Attributes:
        mapping: ``{Var: value}`` over the superquery's variables.
        witnesses: the number *k* of witness copies per node used.
        index_choice: ``{path: tuple-of-values}`` — the (symbolic) group
            correspondence the certificate encodes, evaluated on the
            canonical database.
    """

    __slots__ = ("mapping", "witnesses", "index_choice")

    def __init__(self, mapping, witnesses, index_choice):
        self.mapping = dict(mapping)
        self.witnesses = witnesses
        self.index_choice = dict(index_choice)

    def __repr__(self):
        return "SimulationCertificate(witnesses=%d, vars=%d)" % (
            self.witnesses,
            len(self.mapping),
        )


def _generic_value(var):
    return frozen_constant(var, "@g")


def _witness_value(var, path, copy):
    return frozen_constant(var, "@w:%s:%d" % ("/".join(path), copy))


def build_simulation_target(sub, witnesses, chase=None):
    """Build the augmented body of *sub* used as homomorphism target.

    Returns ``(atoms, available)`` where *atoms* are the ground target
    atoms and *available* maps each path of *sub* to the set of values an
    index variable of the matched superquery node may take at that path
    (generic chain-index values, witness values at the path and its
    ancestors, and all ordinary constants).

    :param chase: optional saturation hook ``atoms -> ChaseResult``
        (the engine passes :meth:`repro.pipeline.stages.Pipeline.chase`
        partially applied to its inclusion dependencies).  Derived
        atoms join the target — more facts to map into, so containment
        *under* the dependencies can hold where plain containment
        fails.  Chase-invented labelled nulls are **not** added to the
        index-value pools: an index choice must stay justified by the
        unconstrained canonical database, which keeps the extension
        sound.
    """
    paths = sub.paths()
    generic = {v: Const(_generic_value(v)) for v in sub.variables()}
    atoms = []
    constants = set()
    for node in sub.nodes():
        for atom in node.own_atoms:
            ground = atom.substitute(generic)
            atoms.append(ground)
            constants.update(
                t.value
                for t, orig in zip(ground.args, atom.args)
                if isinstance(orig, Const)
            )

    # Witness values available at each path: own + ancestors.
    witness_values = {path: set() for path in paths}
    for path, node in paths.items():
        if not path:
            continue  # the root has no index, hence no witness copies
        parent = paths[path[:-1]]
        shared = set(node.index) | set(parent.index)
        body = sub.full_body(path)
        body_vars = sorted({v for atom in body for v in atom.variables()})
        for copy in range(witnesses):
            mapping = {}
            for var in body_vars:
                if var in shared:
                    mapping[var] = generic[var]
                else:
                    mapping[var] = Const(_witness_value(var, path, copy))
            for atom in body:
                atoms.append(atom.substitute(mapping))
            witness_values[path].update(
                mapping[v].value for v in body_vars if v not in shared
            )

    if chase is not None:
        atoms.extend(chase(tuple(atoms)).added)

    # Chain-index generic values available at each path.
    available = {}
    for path, node in paths.items():
        allowed = set(constants)
        chain = path
        while True:
            chain_node = paths[chain]
            allowed.update(_generic_value(v) for v in chain_node.index)
            allowed.update(witness_values.get(chain, ()))
            if not chain:
                break
            chain = chain[:-1]
        available[path] = allowed
    return tuple(atoms), available


class SimulationTarget:
    """A witness-augmented canonical database, ready for search.

    Bundles the ground *atoms* of :func:`build_simulation_target`, the
    per-path *available* index-value pools, and the *compiled* inverted
    index (:class:`repro.cq.propagation.CompiledTarget`) the
    homomorphism search runs on.  Instances are immutable by convention:
    they are cached and shared across certificate searches (the
    containment engine keys them on ``(query, witnesses)``), so callers
    must never mutate ``available`` or ``atoms``.
    """

    __slots__ = ("atoms", "available", "compiled")

    def __init__(self, atoms, available, compiled):
        self.atoms = atoms
        self.available = available
        self.compiled = compiled

    def __repr__(self):
        return "SimulationTarget(atoms=%d, paths=%d)" % (
            len(self.atoms),
            len(self.available),
        )


def simulation_target(sub, witnesses, cache=None, stats=None, chase=None,
                      chase_key=None):
    """The :class:`SimulationTarget` for *sub* with *witnesses* copies.

    :param cache: optional mapping-like store (``get``/``__setitem__``)
        keyed on ``(sub, witnesses)`` — the query's structural identity
        is its fingerprint.  The engine passes its LRU target cache here
        so witness escalation, ``contains_many``, ``pairwise_matrix``,
        and the weak-equivalence truncation sweep reuse targets instead
        of rebuilding them.
    :param stats: optional sink with a ``tally(name)`` method; receives
        ``target_cache_hits`` / ``target_cache_misses`` when *cache* is
        given.
    :param chase: optional saturation hook (see
        :func:`build_simulation_target`).
    :param chase_key: the hook's cache identity (the engine passes its
        inclusion-dependency tuple).  Only when given does the cache key
        grow a third component — unconstrained keys are unchanged, so
        pre-existing persisted targets stay valid.
    """
    key = (sub, witnesses)
    if chase_key is not None:
        key = (sub, witnesses, chase_key)
    if cache is not None:
        hit = cache.get(key)
        if hit is not None:
            if stats is not None:
                stats.tally("target_cache_hits")
            return hit
    atoms, available = build_simulation_target(sub, witnesses, chase=chase)
    target = SimulationTarget(atoms, available, compile_target(atoms))
    if cache is not None:
        if stats is not None:
            stats.tally("target_cache_misses")
        cache[key] = target
    return target


def _value_of_sub_term(term):
    return _generic_value(term) if is_var(term) else term.value


def simulation_certificate(sub, sup, witnesses=None, stats=None, cache=None,
                           chase=None, chase_key=None):
    """Find a certificate that ``sub ⊴ sup``, or return None.

    :param sub: the simulated :class:`GroupingQuery` (the "smaller").
    :param sup: the simulating query (the "larger").
    :param witnesses: witness copies per node; defaults to
        ``max(1, |vars(sup)|)``, the completeness bound.
    :param stats: optional sink with a ``tally(name, amount=1)`` method
        (e.g. :class:`repro.engine.EngineStats`); receives
        ``certificate_searches`` per concrete search and
        ``witness_escalations`` when the incremental strategy falls back
        to the completeness bound.
    :param cache: optional simulation-target cache (see
        :func:`simulation_target`), shared across the escalation retry
        and across calls.
    :param chase: optional chase hook, with *chase_key* its cache
        identity (see :func:`simulation_target`) — containment under
        inclusion dependencies.
    """
    sub.require_same_shape(sup)
    if witnesses is None:
        # Incremental strategy: a certificate into a smaller target stays
        # valid in a larger one, so try one witness copy first and fall
        # back to the completeness bound only when needed.
        bound = max(1, len(sup.variables()))
        certificate = simulation_certificate(
            sub, sup, witnesses=1, stats=stats, cache=cache,
            chase=chase, chase_key=chase_key,
        )
        if certificate is not None or bound == 1:
            return certificate
        if stats is not None:
            stats.tally("witness_escalations")
        return simulation_certificate(
            sub, sup, witnesses=bound, stats=stats, cache=cache,
            chase=chase, chase_key=chase_key,
        )
    if witnesses < 0:
        raise ReproError("witnesses must be non-negative")
    if stats is not None:
        stats.tally("certificate_searches")

    target = simulation_target(
        sub, witnesses, cache=cache, stats=stats, chase=chase,
        chase_key=chase_key,
    )
    available = target.available

    sub_paths = sub.paths()
    sup_paths = sup.paths()

    # Pin the value columns of every node pair.
    fixed = {}
    for path, sup_node in sup_paths.items():
        sub_node = sub_paths[path]
        for (name, sup_term), (__, sub_term) in zip(
            sup_node.values, sub_node.values
        ):
            sub_value = _value_of_sub_term(sub_term)
            if is_var(sup_term):
                if fixed.get(sup_term, sub_value) != sub_value:
                    return None
                fixed[sup_term] = sub_value
            elif sup_term.value != sub_value:
                return None

    # Index variables of sup may only take stage-available values.
    allowed = {}
    for path, sup_node in sup_paths.items():
        for var in sup_node.index:
            pool = available[path]
            if var in allowed:
                allowed[var] = allowed[var] & pool
            else:
                allowed[var] = set(pool)

    sup_atoms = tuple(a for node in sup.nodes() for a in node.own_atoms)
    mapping = find_homomorphism(
        sup_atoms, target.compiled, fixed=fixed, allowed=allowed
    )
    if mapping is None:
        return None
    # Index variables that occur in no sup atom (possible when an index
    # variable is also a value variable already pinned by `fixed`) are
    # covered; truly unconstrained index variables cannot exist because
    # grouping-query validation requires them to occur in the parent body.
    mapping = dict(mapping)
    for var, value in fixed.items():
        mapping.setdefault(var, value)
    index_choice = {
        path: tuple(mapping.get(v) for v in node.index)
        for path, node in sup_paths.items()
    }
    return SimulationCertificate(mapping, witnesses, index_choice)


def is_simulated(sub, sup, witnesses=None, stats=None, cache=None,
                 chase=None, chase_key=None):
    """True iff ``sub ⊴ sup`` (every group of sub lies in a group of sup,
    on every database — every database *satisfying the dependencies*
    when a chase hook is given)."""
    return (
        simulation_certificate(
            sub, sup, witnesses=witnesses, stats=stats, cache=cache,
            chase=chase, chase_key=chase_key,
        )
        is not None
    )
