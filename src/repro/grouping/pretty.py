"""Pretty-printing for grouping queries.

Renders a grouping-query tree in the paper's indexed-query notation:
one line per set node, with its index variables, value columns, and the
atoms it introduces::

    q0()               [a: X] :- r(X)
    q1(X) "kids"       [b: Y] :- s(X, Y)

The rendering is for humans (debugging, examples, teaching); it is not
a parseable syntax.
"""

__all__ = ["format_grouping", "format_certificate"]


def format_grouping(query):
    """Render a :class:`GroupingQuery` as indexed-query text."""
    lines = []
    paths = query.paths()
    for position, (path, node) in enumerate(sorted(paths.items())):
        index = ", ".join(v.name for v in node.index)
        values = ", ".join(
            "%s: %r" % (name, term) for name, term in node.values
        )
        atoms = ", ".join(repr(a) for a in node.own_atoms) or "true"
        label = '"%s"' % "/".join(path) if path else "(root)"
        lines.append(
            "q%d(%s) %-12s [%s] :- %s" % (position, index, label, values, atoms)
        )
    return "\n".join(lines)


def format_certificate(certificate):
    """Render a :class:`SimulationCertificate` mapping, sorted."""
    lines = ["witnesses per node: %d" % certificate.witnesses]
    for var, value in sorted(certificate.mapping.items(), key=lambda p: p[0].name):
        lines.append("  %s ↦ %r" % (var.name, value))
    for path, choice in sorted(certificate.index_choice.items()):
        label = "/".join(path) or "(root)"
        lines.append("  index[%s] = %r" % (label, choice))
    return "\n".join(lines)
