"""Semantics of grouping queries over flat databases.

Two views of the same answer:

* :func:`node_groups` — the indexed view the decision procedures reason
  about: for every node, a map from index values to the set of rows of
  that group.  A row is ``(values, child_keys)`` where *child_keys* are
  the index values of the element's set-valued components.
* :func:`evaluate_grouping` — the complex-object view: the nested value
  (a :class:`repro.objects.values.CSet` of records) the query denotes.

The group of node *n* at index ``ī`` holds one row per satisfying
assignment of *n*'s full body (ancestor + own atoms) with the index
variables pinned to ``ī``.  A child key that no assignment of the child
body realises denotes the empty set — this is how COQL answers acquire
empty inner sets, and why equivalence is more delicate than containment
(paper, Sections 3.2 and 5).
"""

from repro.cq.query import ConjunctiveQuery
from repro.cq.evaluate import evaluate_bindings
from repro.cq.terms import is_var
from repro.objects.values import Record, CSet

__all__ = ["node_groups", "evaluate_grouping", "reachable_keys"]


def node_groups(query, database):
    """Compute ``{path: {index_values: frozenset(rows)}}`` for every node.

    Rows are ``(values, child_keys)``: *values* is the tuple of the
    node's value columns, *child_keys* the tuple (aligned with
    ``node.children``) of child index values.
    """
    groups = {}
    for path, node in query.paths().items():
        body = query.full_body(path)
        per_index = {}
        carrier = ConjunctiveQuery((), body, query.name)
        for binding in evaluate_bindings(carrier, database):
            key = tuple(binding[v] for v in node.index)
            values = tuple(
                binding[t] if is_var(t) else t.value for __, t in node.values
            )
            child_keys = tuple(
                tuple(binding[v] for v in child.index) for child in node.children
            )
            per_index.setdefault(key, set()).add((values, child_keys))
        groups[path] = {key: frozenset(rows) for key, rows in per_index.items()}
    return groups


def reachable_keys(query, groups):
    """``{path: set(index values)}`` of the keys reachable from the root.

    The root key ``()`` is always reachable.  A child key is reachable
    when some row of a reachable parent group carries it — whether or not
    the child group is non-empty (an unrealised key denotes ``{}``).
    """
    reachable = {path: set() for path in groups}
    reachable[()].add(())

    def walk(path, node, key):
        for values, child_keys in groups[path].get(key, ()):
            for child, child_key in zip(node.children, child_keys):
                child_path = path + (child.label,)
                if child_key not in reachable[child_path]:
                    reachable[child_path].add(child_key)
                    walk(child_path, child, child_key)

    walk((), query.root, ())
    return reachable


def evaluate_grouping(query, database):
    """Evaluate the query to its nested complex-object answer."""
    groups = node_groups(query, database)

    def build(path, node, key):
        elements = []
        for values, child_keys in groups[path].get(key, ()):
            fields = dict(zip(node.value_names(), values))
            for child, child_key in zip(node.children, child_keys):
                fields[child.label] = build(
                    path + (child.label,), child, child_key
                )
            elements.append(Record(fields))
        return CSet(elements)

    return build((), query.root, ())
