"""Conjunctive queries with grouping (indexed queries), as trees.

A :class:`GroupingQuery` describes a query whose answer is a nested
relation.  It is a tree of :class:`GroupingNode`; each node corresponds
to one set node of the output type:

* ``values`` — named atomic output columns of the node's element records;
* ``own_atoms`` — the body atoms introduced at this node (the node's
  *full body* is the union of its own atoms and all ancestors' atoms);
* ``index`` — the tuple of variables identifying the node's groups.  The
  index variables must occur in the parent's full body: they are the
  outer variables the nested subquery depends on.  The root has the
  empty index (a single group — the query answer);
* ``children`` — the set-valued components of the element records, one
  child node per component, keyed by attribute label.

Semantics (see :mod:`repro.grouping.semantics`): the group of node *n*
at index value ``ī`` contains one element record per satisfying
assignment of *n*'s full body with the index pinned to ``ī``; the
element's set-valued components are the child groups at the child-index
values under the assignment.

This is exactly the paper's encoding of COQL answers by flat queries
with index variables (Section 5.1): the index plays the role of the
fresh atomic value naming an inner set.
"""

from repro.errors import ReproError, IncomparableQueriesError
from repro.cq.terms import Var, Const, Atom, is_var
from repro.cq.query import ConjunctiveQuery
from repro.pickling import PicklableSlots

__all__ = ["GroupingNode", "GroupingQuery", "truncation_problems"]


class GroupingNode(PicklableSlots):
    """One set node of a grouping-query tree.  Immutable."""

    __slots__ = ("label", "own_atoms", "values", "index", "children", "_hash")

    def __init__(self, label, own_atoms, values, index=(), children=()):
        own_atoms = tuple(own_atoms)
        values = tuple(sorted(dict(values).items()))
        index = tuple(index)
        children = tuple(children)
        if not isinstance(label, str):
            raise ReproError("node label must be a string")
        for atom in own_atoms:
            if not isinstance(atom, Atom):
                raise ReproError("own_atoms must contain atoms, got %r" % (atom,))
        for name, term in values:
            if not isinstance(name, str):
                raise ReproError("value names must be strings")
            if not isinstance(term, (Var, Const)):
                raise ReproError("value terms must be terms, got %r" % (term,))
        for var in index:
            if not is_var(var):
                raise ReproError("index entries must be variables, got %r" % (var,))
        labels = [child.label for child in children]
        if len(set(labels)) != len(labels):
            raise ReproError("duplicate child labels: %r" % (labels,))
        value_names = {name for name, __ in values}
        if value_names & set(labels):
            raise ReproError(
                "child labels clash with value names: %r"
                % (value_names & set(labels),)
            )
        object.__setattr__(self, "label", label)
        object.__setattr__(self, "own_atoms", own_atoms)
        object.__setattr__(self, "values", values)
        object.__setattr__(self, "index", index)
        object.__setattr__(self, "children", children)
        object.__setattr__(
            self, "_hash", hash((label, own_atoms, values, index, children))
        )

    def __setattr__(self, name, value):
        raise AttributeError("GroupingNode is immutable")

    def value_names(self):
        return tuple(name for name, __ in self.values)

    def value_terms(self):
        return tuple(term for __, term in self.values)

    def child(self, label):
        for node in self.children:
            if node.label == label:
                return node
        raise KeyError(label)

    def child_labels(self):
        return tuple(node.label for node in self.children)

    def __eq__(self, other):
        if not isinstance(other, GroupingNode):
            return NotImplemented
        return (
            self.label == other.label
            and self.own_atoms == other.own_atoms
            and self.values == other.values
            and self.index == other.index
            and self.children == other.children
        )

    def __hash__(self):
        return self._hash

    def __repr__(self):
        return "GroupingNode(%r, atoms=%d, values=%r, index=%r, children=%r)" % (
            self.label,
            len(self.own_atoms),
            self.value_names(),
            self.index,
            self.child_labels(),
        )


class GroupingQuery(PicklableSlots):
    """A grouping-query tree with validation and traversal helpers."""

    __slots__ = ("name", "root")

    def __init__(self, root, name="q"):
        if not isinstance(root, GroupingNode):
            raise ReproError("root must be a GroupingNode")
        if root.index:
            raise ReproError("the root node must have an empty index")
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "root", root)
        self._validate(root, ())

    def __setattr__(self, name, value):
        raise AttributeError("GroupingQuery is immutable")

    @staticmethod
    def _validate(node, ancestor_atoms):
        full = tuple(ancestor_atoms) + node.own_atoms
        in_scope = {v for atom in full for v in atom.variables()}
        for __, term in node.values:
            if is_var(term) and term not in in_scope:
                raise ReproError(
                    "value term %r of node %r is not bound by the body"
                    % (term, node.label)
                )
        parent_scope = {v for atom in ancestor_atoms for v in atom.variables()}
        for var in node.index:
            if var not in parent_scope:
                raise ReproError(
                    "index variable %r of node %r does not occur in the "
                    "parent's body" % (var, node.label)
                )
        for child in node.children:
            GroupingQuery._validate(child, full)

    # -- traversal ---------------------------------------------------------

    def nodes(self):
        """All nodes, in pre-order (root first)."""
        out = []

        def walk(node):
            out.append(node)
            for child in node.children:
                walk(child)

        walk(self.root)
        return tuple(out)

    def paths(self):
        """``{path: node}`` where a path is a tuple of labels from the root.

        The root has path ``()``.
        """
        out = {}

        def walk(node, path):
            out[path] = node
            for child in node.children:
                walk(child, path + (child.label,))

        walk(self.root, ())
        return out

    def full_body(self, path):
        """The full body (ancestors + own atoms) of the node at *path*."""
        atoms = []
        node = self.root
        atoms.extend(node.own_atoms)
        for label in path:
            node = node.child(label)
            atoms.extend(node.own_atoms)
        return tuple(atoms)

    def node_at(self, path):
        node = self.root
        for label in path:
            node = node.child(label)
        return node

    def parent_path(self, path):
        if not path:
            raise ReproError("the root has no parent")
        return path[:-1]

    def variables(self):
        """All variables used anywhere in the tree, sorted by name."""
        seen = set()
        for node in self.nodes():
            for atom in node.own_atoms:
                seen.update(atom.variables())
            seen.update(t for __, t in node.values if is_var(t))
            seen.update(node.index)
        return tuple(sorted(seen))

    def depth(self):
        """Nesting depth: 1 for a flat query (root with no children)."""

        def walk(node):
            if not node.children:
                return 1
            return 1 + max(walk(child) for child in node.children)

        return walk(self.root)

    def shape(self):
        """The output shape: value names and child shapes, recursively.

        Two grouping queries are comparable iff their shapes agree.
        """

        def walk(node):
            return (
                node.value_names(),
                tuple((child.label, walk(child)) for child in node.children),
            )

        return walk(self.root)

    def require_same_shape(self, other):
        if self.shape() != other.shape():
            raise IncomparableQueriesError(
                "grouping queries have different output shapes: %r vs %r"
                % (self.shape(), other.shape())
            )

    def to_flat_cq(self, path=()):
        """The node at *path* as a classical CQ ``q(index..., values...)``.

        Useful for the flat (depth-1) special case, where simulation is
        classical containment.
        """
        node = self.node_at(path)
        head = tuple(node.index) + node.value_terms()
        return ConjunctiveQuery(head, self.full_body(path), self.name)

    def rename_apart(self, suffix):
        """A copy with every variable renamed ``X -> X<suffix>``."""
        mapping = {v: Var(v.name + suffix) for v in self.variables()}

        def walk(node):
            return GroupingNode(
                node.label,
                tuple(a.substitute(mapping) for a in node.own_atoms),
                {
                    name: (mapping.get(t, t) if is_var(t) else t)
                    for name, t in node.values
                },
                tuple(mapping[v] for v in node.index),
                tuple(walk(child) for child in node.children),
            )

        return GroupingQuery(walk(self.root), self.name)

    def truncate(self, kept_paths):
        """Prune every set node whose path is not in *kept_paths*.

        *kept_paths* must be prefix-closed, contain the root path ``()``,
        and name only paths of this query — a kept path absent from the
        query, or one whose parent is pruned, would otherwise be dropped
        silently, turning a caller-side mismatch into a wrong truncation
        (and hence a wrong containment obligation).  Used by the COQL
        containment test to generate the per-emptiness-pattern
        simulation obligations.
        """
        kept = set(kept_paths)
        problems = truncation_problems(self, kept)
        if problems:
            raise ReproError(problems[0][0])

        def walk(node, path):
            children = tuple(
                walk(child, path + (child.label,))
                for child in node.children
                if path + (child.label,) in kept
            )
            return GroupingNode(
                node.label, node.own_atoms, dict(node.values), node.index, children
            )

        return GroupingQuery(walk(self.root, ()), self.name)

    def __eq__(self, other):
        if not isinstance(other, GroupingQuery):
            return NotImplemented
        return self.name == other.name and self.root == other.root

    def __hash__(self):
        return hash((self.name, self.root))

    def __repr__(self):
        return "GroupingQuery(%s, depth=%d, nodes=%d)" % (
            self.name,
            self.depth(),
            len(self.nodes()),
        )


def truncation_problems(query, kept_paths):
    """Validate a truncation pattern without raising.

    Returns a list of ``(message, path)`` problems — *path* is the
    offending kept path (or None for a missing root).  Empty list means
    ``query.truncate(kept_paths)`` will succeed.  :meth:`truncate`
    raises the first problem; the COQL006 analysis rule reports all of
    them as diagnostics.  The checks, in order:

    * the root path ``()`` must be kept (pruning the root is not a
      truncation pattern);
    * every kept path must name a set node of *query* — unknown paths
      would otherwise be dropped silently, turning a caller-side
      mismatch into a wrong containment obligation;
    * the kept set must be prefix-closed — a kept node below a pruned
      parent is unreachable in the truncated tree.
    """
    kept = set(kept_paths)
    problems = []
    if () not in kept:
        problems.append(("kept_paths must contain the root path ()", None))
    own_paths = set(query.paths())
    for path in sorted(kept - own_paths):
        problems.append((
            "kept_paths name set nodes absent from query %s: %r"
            % (query.name, [path]),
            path,
        ))
    for path in sorted(kept):
        if path and path[:-1] not in kept:
            problems.append((
                "kept_paths are not prefix-closed: %r is kept but its "
                "parent %r is pruned" % (path, path[:-1]),
                path,
            ))
    return problems
