"""Convenience constructors for grouping queries from strings.

>>> q = grouping_query(
...     node("", ["r(Xa)"], {"a": "Xa"}, children=[
...         node("kids", ["s(Xa, Yb)"], {"b": "Yb"], index=["Xa"]),
...     ])
... )                                                    # doctest: +SKIP
"""

from repro.errors import ParseError
from repro.cq.terms import Var, Const
from repro.cq.parser import parse_atom, _parse_term
from repro.grouping.query import GroupingNode, GroupingQuery

__all__ = ["node", "grouping_query", "term"]


def term(spec):
    """Parse a term spec: a Var/Const passes through; strings parse as in
    the datalog syntax (upper-case initial = variable)."""
    if isinstance(spec, (Var, Const)):
        return spec
    if isinstance(spec, str):
        return _parse_term(spec)
    if isinstance(spec, (int, float, bool)):
        return Const(spec)
    raise ParseError("cannot interpret term spec %r" % (spec,))


def node(label, atoms, values, index=(), children=()):
    """Build a :class:`GroupingNode` from string specs.

    :param atoms: iterable of atom strings, e.g. ``"r(X, Y)"``.
    :param values: ``{name: term-spec}``.
    :param index: iterable of variable names.
    :param children: child nodes (already built).
    """
    parsed_atoms = [parse_atom(a) if isinstance(a, str) else a for a in atoms]
    parsed_values = {name: term(spec) for name, spec in dict(values).items()}
    parsed_index = tuple(
        v if isinstance(v, Var) else Var(v) for v in index
    )
    return GroupingNode(label, parsed_atoms, parsed_values, parsed_index, children)


def grouping_query(root, name="q"):
    """Wrap a root node into a :class:`GroupingQuery`."""
    return GroupingQuery(root, name)
