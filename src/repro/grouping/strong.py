"""Strong simulation: the equivalence-side condition (paper, Section 6).

``Q ⊴s Q'`` (*Q is strongly simulated by Q'*) iff on every database,
every element of Q's answer is an element of Q' 's answer **as a nested
value** — i.e. the uniform index correspondence of simulation must match
groups that are *equal*, not merely included.  For depth 2::

    ∀I ∃I' ∀S ∀C . (Q1(S,I) ∧ Q2(I,C) ⟹ Q'1(S,I') ∧ Q'2(I',C))
                 ∧ (Q1(S,I) ∧ Q'2(I',C) ⟹ Q2(I,C))

The extra conjunct breaks the Bernays–Schönfinkel / Class-1.2 shape, so
(as the paper notes) decidability of strong simulation does not follow
from classical results; the paper proves it decidable and NP-complete.

The NP certificate implemented here extends the simulation certificate:

1. an extended containment mapping φ as in
   :mod:`repro.grouping.simulation` (the forward, ⊆ direction), and
2. for every set node *n*, a classical containment proof that the
   *paired query* ``L_n ⊑ R_n`` (the reverse, ⊇ direction), where

   * ``R_n(ī_n, v̄_n)`` is node *n*'s group-content query, and
   * ``L_n`` describes the content of the Q'-group *chosen by φ*: the
     witness bodies along *n*'s chain (which tie the choice to the index
     ``ī_n``) conjoined with Q' 's chain body in which the index
     variables of the matched node are replaced by their φ-images
     (translated back from canonical values to query variables).

Soundness: whatever the database and witness assignment, every row of
the chosen Q'-group is an answer of ``L_n``, hence of ``R_n``, hence a
row of Q's group — giving group equality when combined with φ.
Completeness of the (φ, reverse-proof) search is validated empirically
against :func:`repro.grouping.bruteforce.semantic_strongly_simulates`
(see the property tests); the forward search enumerates all φ and
accepts when any passes every reverse check.
"""

from repro.errors import ReproError
from repro.cq.terms import Var, Const, is_var
from repro.cq.query import ConjunctiveQuery
from repro.cq.homomorphism import find_all_homomorphisms
from repro.cq.containment import contains as cq_contains
from repro.grouping.simulation import (
    SimulationCertificate,
    simulation_target,
    _generic_value,
    _witness_value,
)

__all__ = [
    "StrongSimulationCertificate",
    "strong_simulation_certificate",
    "is_strongly_simulated",
]


class StrongSimulationCertificate:
    """A simulation certificate whose reverse checks all succeeded."""

    __slots__ = ("forward", "reverse_paths")

    def __init__(self, forward, reverse_paths):
        self.forward = forward
        self.reverse_paths = tuple(reverse_paths)

    def __repr__(self):
        return "StrongSimulationCertificate(witnesses=%d, reverse_paths=%r)" % (
            self.forward.witnesses,
            self.reverse_paths,
        )


def strong_simulation_certificate(sub, sup, witnesses=None, max_candidates=None,
                                  cache=None, stats=None):
    """Find a certificate that ``sub ⊴s sup``, or return None.

    Enumerates forward simulation certificates φ and returns the first
    whose reverse containments all hold.  *max_candidates* bounds the
    number of φ considered (None = unbounded).  *cache*/*stats* are the
    simulation-target cache and counter sink of
    :func:`repro.grouping.simulation.simulation_target`; the forward
    target here is the same witness-augmented canonical database, so a
    shared cache serves both procedures.
    """
    sub.require_same_shape(sup)
    if witnesses is None:
        witnesses = max(1, len(sup.variables()))

    target = simulation_target(sub, witnesses, cache=cache, stats=stats)
    available = target.available
    sub_paths = sub.paths()
    sup_paths = sup.paths()

    fixed = {}
    for path, sup_node in sup_paths.items():
        sub_node = sub_paths[path]
        for (__, sup_term), (___, sub_term) in zip(sup_node.values, sub_node.values):
            sub_value = (
                _generic_value(sub_term) if is_var(sub_term) else sub_term.value
            )
            if is_var(sup_term):
                if fixed.get(sup_term, sub_value) != sub_value:
                    return None
                fixed[sup_term] = sub_value
            elif sup_term.value != sub_value:
                return None

    allowed = {}
    for path, sup_node in sup_paths.items():
        for var in sup_node.index:
            pool = available[path]
            allowed[var] = (allowed[var] & pool) if var in allowed else set(pool)

    sup_atoms = tuple(a for node in sup.nodes() for a in node.own_atoms)
    unfreeze = _build_unfreezer(sub, witnesses)

    count = 0
    for mapping in find_all_homomorphisms(
        sup_atoms, target.compiled, fixed=fixed, allowed=allowed
    ):
        count += 1
        if max_candidates is not None and count > max_candidates:
            return None
        mapping = dict(mapping)
        for var, value in fixed.items():
            mapping.setdefault(var, value)
        reverse_paths = [p for p in sub_paths if p]
        if all(
            _reverse_holds(sub, sup, path, mapping, witnesses, unfreeze)
            for path in reverse_paths
        ):
            index_choice = {
                path: tuple(mapping.get(v) for v in node.index)
                for path, node in sup_paths.items()
            }
            forward = SimulationCertificate(mapping, witnesses, index_choice)
            return StrongSimulationCertificate(forward, reverse_paths)
    return None


def is_strongly_simulated(sub, sup, witnesses=None, max_candidates=None,
                          cache=None, stats=None):
    """True iff ``sub ⊴s sup``."""
    return (
        strong_simulation_certificate(
            sub, sup, witnesses=witnesses, max_candidates=max_candidates,
            cache=cache, stats=stats,
        )
        is not None
    )


def _build_unfreezer(sub, witnesses):
    """Map canonical values back to fresh query variables.

    Generic values become the sub variables themselves; witness values
    become dedicated variables (one per witness variable, shared across
    reverse checks); other values are ordinary constants.
    """
    table = {}
    for var in sub.variables():
        table[_generic_value(var)] = var
    paths = sub.paths()
    for path, node in paths.items():
        if not path:
            continue
        parent = paths[path[:-1]]
        shared = set(node.index) | set(parent.index)
        body = sub.full_body(path)
        body_vars = {v for atom in body for v in atom.variables()}
        for copy in range(witnesses):
            for var in body_vars:
                if var not in shared:
                    value = _witness_value(var, path, copy)
                    table[value] = Var(
                        "W%%%s%%%d%%%s" % ("/".join(path), copy, var.name)
                    )

    def unfreeze(value):
        hit = table.get(value)
        return Const(value) if hit is None else hit

    return unfreeze


def _reverse_holds(sub, sup, path, mapping, witnesses, unfreeze):
    """Check the ⊇ direction at *path*: the φ-chosen sup group's content
    is contained in sub's group content (as value rows)."""
    left = _paired_query(sub, sup, path, mapping, witnesses, unfreeze)
    right = sub.to_flat_cq(path)
    try:
        return cq_contains(right, left)  # left ⊑ right
    except ReproError:
        return False


def _paired_query(sub, sup, path, mapping, witnesses, unfreeze):
    """Build ``L_path``: witness bodies along the chain + sup's chain body
    with the matched node's index replaced by its φ-image."""
    sub_paths = sub.paths()
    sup_paths = sup.paths()
    sup_node = sup_paths[path]
    pinned = {var: unfreeze(mapping[var]) for var in sup_node.index}

    body = []
    # Witness bodies along the chain (assert the sub group chain exists
    # and bind the witness variables the φ-image may mention).
    chain = [path[:i] for i in range(len(path) + 1)]
    for q in chain:
        if not q:
            continue
        node = sub_paths[q]
        parent = sub_paths[q[:-1]]
        shared = set(node.index) | set(parent.index)
        q_body = sub.full_body(q)
        q_vars = {v for atom in q_body for v in atom.variables()}
        for copy in range(witnesses):
            copy_map = {}
            for var in q_vars:
                if var in shared:
                    copy_map[var] = var
                else:
                    copy_map[var] = Var(
                        "W%%%s%%%d%%%s" % ("/".join(q), copy, var.name)
                    )
            for atom in q_body:
                body.append(atom.substitute(copy_map))

    # Sup's chain body with fresh variables, except the matched node's
    # index variables which take their φ-image terms.
    sup_fresh = {}
    for q in chain:
        for atom in sup_paths[q].own_atoms:
            body.append(atom.substitute(_SupRename(pinned, sup_fresh)))

    head = list(sub_paths[path].index)
    for __, term in sup_node.values:
        if is_var(term):
            head.append(pinned.get(term, sup_fresh.setdefault(term, _fresh(term))))
        else:
            head.append(term)
    return ConjunctiveQuery(tuple(head), tuple(body), "paired")


def _fresh(var):
    return Var("S%%" + var.name)


class _SupRename(dict):
    """A lazy {Var: term} mapping: pinned index vars keep their φ-image;
    every other sup variable gets a stable fresh variable."""

    def __init__(self, pinned, fresh):
        super().__init__()
        self._pinned = pinned
        self._fresh = fresh

    def get(self, var, default=None):
        if var in self._pinned:
            return self._pinned[var]
        return self._fresh.setdefault(var, _fresh(var))
