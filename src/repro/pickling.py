"""Pickle support for the immutable ``__slots__`` value classes.

The AST, term, and query classes freeze themselves by overriding
``__setattr__`` to raise — which also breaks pickling, because the
default slot-state restoration calls ``setattr`` on the new instance.
:class:`PicklableSlots` reinstates pickling via ``object.__setattr__``:
instances stay immutable to ordinary code but can cross process
boundaries, which the parallel containment engine
(:mod:`repro.engine.parallel`) relies on to ship queries to its worker
processes and verdicts back.

The mixin contributes no slots of its own, so subclasses keep their
exact memory layout; it collects slot names across the whole MRO, so it
works for any depth of (single-inheritance) subclassing.
"""

__all__ = ["PicklableSlots"]


class PicklableSlots:
    """Mixin: pickling for immutable classes that block ``__setattr__``."""

    __slots__ = ()

    def __getstate__(self):
        state = {}
        for klass in type(self).__mro__:
            for name in getattr(klass, "__slots__", ()):
                # Optional slots (e.g. the parser-attached source span)
                # may never have been filled in.
                if hasattr(self, name):
                    state[name] = getattr(self, name)
        return state

    def __setstate__(self, state):
        for name, value in state.items():
            object.__setattr__(self, name, value)
