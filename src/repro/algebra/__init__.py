"""Nested relational algebra (Thomas & Fischer [40] style).

The paper proves COQL equivalent to the algebra fragment
``{π, σ=, ×, outernest, unnest}`` (with ``nest`` replaced by
``outernest``, Example A.1) and uses the correspondence to settle the
Gyssens–Paredaens–Van Gucht question [24]: equivalence of ``nest;unnest``
sequences whose nesting is governed by atomic attributes is NP-complete.

* :mod:`repro.algebra.expr` — algebra expression trees with schema
  inference;
* :mod:`repro.algebra.ops` — the value-level operators;
* :mod:`repro.algebra.to_coql` — the translation into COQL;
* :mod:`repro.algebra.nest_unnest` — ``nest``/``unnest`` pipelines and
  the equivalence decider answering [24].
"""

from repro.algebra.expr import (
    BaseRel,
    Project,
    SelectEq,
    Product,
    RenameAttr,
    Nest,
    Unnest,
    OuterNest,
    evaluate_algebra,
    infer_algebra_type,
)
from repro.algebra.ops import (
    op_project,
    op_select_eq,
    op_product,
    op_rename,
    op_nest,
    op_unnest,
    op_outer_nest,
)
from repro.algebra.to_coql import algebra_to_coql
from repro.algebra.nest_unnest import Pipeline, pipelines_equivalent

__all__ = [
    "BaseRel",
    "Project",
    "SelectEq",
    "Product",
    "RenameAttr",
    "Nest",
    "Unnest",
    "OuterNest",
    "evaluate_algebra",
    "infer_algebra_type",
    "op_project",
    "op_select_eq",
    "op_product",
    "op_rename",
    "op_nest",
    "op_unnest",
    "op_outer_nest",
    "algebra_to_coql",
    "Pipeline",
    "pipelines_equivalent",
]
