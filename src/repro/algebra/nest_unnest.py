"""Equivalence of nest/unnest sequences — the question of [24].

Gyssens, Paredaens and Van Gucht ask whether equivalence of two
sequences of ``nest``/``unnest`` operations is decidable.  The paper
answers: **NP-complete**, provided every ``nest`` is governed by atomic
attributes (footnote 3), because such pipelines are COQL queries that
never produce empty sets — where weak equivalence (decidable) coincides
with equivalence.

:class:`Pipeline` models a sequence applied to one base relation;
:func:`pipelines_equivalent` is the decision procedure (translate to
COQL, check empty-set freedom, decide via simulation both ways).
"""

from repro.errors import ReproError, UnsupportedQueryError
from repro.algebra.expr import BaseRel, Nest, Unnest, evaluate_algebra, infer_algebra_type
from repro.algebra.to_coql import algebra_to_coql
from repro.coql.containment import (
    weakly_equivalent,
    empty_set_free,
    contains as coql_contains,
    as_schema,
)

__all__ = ["Pipeline", "pipelines_equivalent", "pipeline_contained"]


class Pipeline:
    """A sequence of nest/unnest steps over a base relation.

    >>> p = Pipeline("r", [("nest", ("b",), "grp"), ("unnest", "grp")])
    """

    __slots__ = ("base", "steps")

    def __init__(self, base, steps):
        checked = []
        for step in steps:
            if step[0] == "nest":
                __, attrs, label = step
                checked.append(("nest", tuple(attrs), label))
            elif step[0] == "unnest":
                __, label = step
                checked.append(("unnest", label))
            else:
                raise ReproError("unknown pipeline step %r" % (step,))
        object.__setattr__(self, "base", base)
        object.__setattr__(self, "steps", tuple(checked))

    def __setattr__(self, name, value):
        raise AttributeError("Pipeline is immutable")

    def to_algebra(self):
        expr = BaseRel(self.base)
        for step in self.steps:
            if step[0] == "nest":
                expr = Nest(expr, step[1], step[2])
            else:
                expr = Unnest(expr, step[1])
        return expr

    def to_coql(self, schema):
        return algebra_to_coql(self.to_algebra(), as_schema(schema))

    def output_type(self, schema):
        return infer_algebra_type(self.to_algebra(), as_schema(schema))

    def evaluate(self, database):
        return evaluate_algebra(self.to_algebra(), database)

    def __repr__(self):
        return "Pipeline(%s; %s)" % (
            self.base,
            "; ".join(
                "ν[%s→%s]" % (",".join(s[1]), s[2])
                if s[0] == "nest"
                else "μ[%s]" % s[1]
                for s in self.steps
            ),
        )


def pipelines_equivalent(first, second, schema, witnesses=None):
    """Decide equivalence of two nest/unnest pipelines (NP-complete).

    Raises :class:`UnsupportedQueryError` when a pipeline falls outside
    the atomic-nesting fragment, mirroring the paper's partial answer.
    """
    resolved = as_schema(schema)
    q1 = first.to_coql(resolved)
    q2 = second.to_coql(resolved)
    for query, pipe in ((q1, first), (q2, second)):
        if not empty_set_free(query, resolved):
            raise UnsupportedQueryError(
                "pipeline %r is not provably empty-set-free; equivalence "
                "falls back to the open general case" % (pipe,)
            )
    # Empty-set-free: equivalence coincides with weak equivalence.
    return weakly_equivalent(q1, q2, resolved, witnesses=witnesses)


def pipeline_contained(sup, sub, schema, witnesses=None):
    """Decide ``sub ⊑ sup`` (Hoare order) for two pipelines."""
    resolved = as_schema(schema)
    return coql_contains(
        sup.to_coql(resolved), sub.to_coql(resolved), resolved,
        witnesses=witnesses,
    )
