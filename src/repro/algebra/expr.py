"""Algebra expression trees, schema inference, and evaluation.

Expressions are immutable; :func:`evaluate_algebra` interprets them over
a :class:`repro.objects.database.Database`, and
:func:`infer_algebra_type` computes the output row type from a schema
(``{relation: RecordType}``), validating attribute bookkeeping.
"""

from repro.errors import SchemaError
from repro.objects.types import RecordType, SetType, AtomType
from repro.algebra import ops as _ops

__all__ = [
    "AlgebraExpr",
    "BaseRel",
    "Project",
    "SelectEq",
    "Product",
    "RenameAttr",
    "Nest",
    "Unnest",
    "OuterNest",
    "evaluate_algebra",
    "infer_algebra_type",
]


class AlgebraExpr:
    __slots__ = ()

    def __setattr__(self, name, value):
        raise AttributeError("%s is immutable" % type(self).__name__)


class BaseRel(AlgebraExpr):
    """An input relation."""

    __slots__ = ("name",)

    def __init__(self, name):
        object.__setattr__(self, "name", name)

    def __repr__(self):
        return self.name


class Project(AlgebraExpr):
    """π_attrs(e)."""

    __slots__ = ("expr", "attrs")

    def __init__(self, expr, attrs):
        object.__setattr__(self, "expr", expr)
        object.__setattr__(self, "attrs", tuple(attrs))

    def __repr__(self):
        return "π[%s](%r)" % (",".join(self.attrs), self.expr)


class SelectEq(AlgebraExpr):
    """σ_{left = right}(e); sides are attribute names or ("const", v)."""

    __slots__ = ("expr", "left", "right")

    def __init__(self, expr, left, right):
        object.__setattr__(self, "expr", expr)
        object.__setattr__(self, "left", left)
        object.__setattr__(self, "right", right)

    def __repr__(self):
        return "σ[%r=%r](%r)" % (self.left, self.right, self.expr)


class Product(AlgebraExpr):
    """e1 × e2 (disjoint attribute names)."""

    __slots__ = ("left", "right")

    def __init__(self, left, right):
        object.__setattr__(self, "left", left)
        object.__setattr__(self, "right", right)

    def __repr__(self):
        return "(%r × %r)" % (self.left, self.right)


class RenameAttr(AlgebraExpr):
    """ρ_{old→new}(e)."""

    __slots__ = ("expr", "mapping")

    def __init__(self, expr, mapping):
        object.__setattr__(self, "expr", expr)
        object.__setattr__(self, "mapping", tuple(sorted(dict(mapping).items())))

    def __repr__(self):
        inner = ",".join("%s→%s" % (o, n) for o, n in self.mapping)
        return "ρ[%s](%r)" % (inner, self.expr)


class Nest(AlgebraExpr):
    """ν_{attrs→label}(e): group by the complement of *attrs*."""

    __slots__ = ("expr", "attrs", "label")

    def __init__(self, expr, attrs, label):
        object.__setattr__(self, "expr", expr)
        object.__setattr__(self, "attrs", tuple(attrs))
        object.__setattr__(self, "label", label)

    def __repr__(self):
        return "ν[%s→%s](%r)" % (",".join(self.attrs), self.label, self.expr)


class Unnest(AlgebraExpr):
    """μ_label(e)."""

    __slots__ = ("expr", "label")

    def __init__(self, expr, label):
        object.__setattr__(self, "expr", expr)
        object.__setattr__(self, "label", label)

    def __repr__(self):
        return "μ[%s](%r)" % (self.label, self.expr)


class OuterNest(AlgebraExpr):
    """outernest(left, right; on → label) — see Example A.1."""

    __slots__ = ("left", "right", "on", "label")

    def __init__(self, left, right, on, label):
        object.__setattr__(self, "left", left)
        object.__setattr__(self, "right", right)
        object.__setattr__(self, "on", tuple(tuple(pair) for pair in on))
        object.__setattr__(self, "label", label)

    def __repr__(self):
        inner = ",".join("%s=%s" % (a, b) for a, b in self.on)
        return "outernest[%s→%s](%r, %r)" % (inner, self.label, self.left, self.right)


def evaluate_algebra(expr, database):
    """Evaluate an algebra expression to a nested relation (CSet)."""
    if isinstance(expr, BaseRel):
        from repro.objects.values import CSet

        return CSet(database[expr.name].rows)
    if isinstance(expr, Project):
        return _ops.op_project(evaluate_algebra(expr.expr, database), expr.attrs)
    if isinstance(expr, SelectEq):
        return _ops.op_select_eq(
            evaluate_algebra(expr.expr, database), expr.left, expr.right
        )
    if isinstance(expr, Product):
        return _ops.op_product(
            evaluate_algebra(expr.left, database),
            evaluate_algebra(expr.right, database),
        )
    if isinstance(expr, RenameAttr):
        return _ops.op_rename(
            evaluate_algebra(expr.expr, database), dict(expr.mapping)
        )
    if isinstance(expr, Nest):
        return _ops.op_nest(
            evaluate_algebra(expr.expr, database), expr.attrs, expr.label
        )
    if isinstance(expr, Unnest):
        return _ops.op_unnest(evaluate_algebra(expr.expr, database), expr.label)
    if isinstance(expr, OuterNest):
        return _ops.op_outer_nest(
            evaluate_algebra(expr.left, database),
            evaluate_algebra(expr.right, database),
            expr.on,
            expr.label,
        )
    raise SchemaError("unknown algebra expression %r" % (expr,))


def infer_algebra_type(expr, schema):
    """Infer the output row type (a RecordType) under ``{rel: RecordType}``."""
    if isinstance(expr, BaseRel):
        if expr.name not in schema:
            raise SchemaError("unknown relation %s" % expr.name)
        return schema[expr.name]
    if isinstance(expr, Project):
        base = infer_algebra_type(expr.expr, schema)
        missing = [a for a in expr.attrs if a not in base]
        if missing:
            raise SchemaError("project: unknown attributes %r" % missing)
        return RecordType({a: base[a] for a in expr.attrs})
    if isinstance(expr, SelectEq):
        base = infer_algebra_type(expr.expr, schema)
        for side in (expr.left, expr.right):
            if isinstance(side, tuple):
                continue
            if side not in base:
                raise SchemaError("select: unknown attribute %s" % side)
            if not isinstance(base[side], AtomType):
                raise SchemaError(
                    "select compares atomic attributes only (%s)" % side
                )
        return base
    if isinstance(expr, Product):
        left = infer_algebra_type(expr.left, schema)
        right = infer_algebra_type(expr.right, schema)
        overlap = set(left.keys()) & set(right.keys())
        if overlap:
            raise SchemaError("product: shared attributes %r" % sorted(overlap))
        fields = dict(left.items())
        fields.update(right.items())
        return RecordType(fields)
    if isinstance(expr, RenameAttr):
        base = infer_algebra_type(expr.expr, schema)
        mapping = dict(expr.mapping)
        fields = {}
        for name, t in base.items():
            fields[mapping.get(name, name)] = t
        if len(fields) != len(base.keys()):
            raise SchemaError("rename collapses attributes")
        return RecordType(fields)
    if isinstance(expr, Nest):
        base = infer_algebra_type(expr.expr, schema)
        missing = [a for a in expr.attrs if a not in base]
        if missing:
            raise SchemaError("nest: unknown attributes %r" % missing)
        if expr.label in base:
            raise SchemaError("nest: label %s already present" % expr.label)
        nested = RecordType({a: base[a] for a in expr.attrs})
        fields = {a: t for a, t in base.items() if a not in expr.attrs}
        fields[expr.label] = SetType(nested)
        return RecordType(fields)
    if isinstance(expr, Unnest):
        base = infer_algebra_type(expr.expr, schema)
        if expr.label not in base:
            raise SchemaError("unnest: unknown attribute %s" % expr.label)
        inner = base[expr.label]
        if not isinstance(inner, SetType) or not isinstance(
            inner.element, RecordType
        ):
            raise SchemaError(
                "unnest: %s is not a set of records" % expr.label
            )
        fields = {a: t for a, t in base.items() if a != expr.label}
        overlap = set(fields) & set(inner.element.keys())
        if overlap:
            raise SchemaError("unnest: attribute collision %r" % sorted(overlap))
        fields.update(inner.element.items())
        return RecordType(fields)
    if isinstance(expr, OuterNest):
        left = infer_algebra_type(expr.left, schema)
        right = infer_algebra_type(expr.right, schema)
        for la, ra in expr.on:
            if la not in left or ra not in right:
                raise SchemaError("outernest: unknown join attributes")
        if expr.label in left:
            raise SchemaError("outernest: label %s already present" % expr.label)
        fields = dict(left.items())
        fields[expr.label] = SetType(right)
        return RecordType(fields)
    raise SchemaError("unknown algebra expression %r" % (expr,))
