"""Translation from the nested relational algebra to COQL.

Witnesses the paper's claim that COQL is equivalent to the
``{π, σ=, ×, outernest, unnest}`` fragment (and hosts the ``nest``
translation used for the nest/unnest-sequence decision procedure; note
``nest`` itself requires the grouping attributes to be *atomic* — the
paper's footnote-3 restriction — because COQL conditions compare atoms
only).
"""

import itertools

from repro.errors import SchemaError, UnsupportedQueryError
from repro.objects.types import AtomType, SetType, RecordType
from repro.coql.ast import (
    Const as CoqlConst,
    VarRef,
    RelRef,
    Proj,
    RecordExpr,
    Select,
)
from repro.algebra.expr import (
    BaseRel,
    Project,
    SelectEq,
    Product,
    RenameAttr,
    Nest,
    Unnest,
    OuterNest,
    infer_algebra_type,
)

__all__ = ["algebra_to_coql"]


def algebra_to_coql(expr, schema):
    """Translate an algebra expression to an equivalent COQL expression.

    :param schema: ``{relation: RecordType}``.
    """
    counter = itertools.count()

    def fresh():
        return "v%d" % next(counter)

    def row_record(var, row_type):
        return RecordExpr({a: Proj(VarRef(var), a) for a in row_type.keys()})

    def side_expr(var, spec):
        if isinstance(spec, tuple) and spec and spec[0] == "const":
            return CoqlConst(spec[1])
        return Proj(VarRef(var), spec)

    def walk(node):
        if isinstance(node, BaseRel):
            return RelRef(node.name)
        if isinstance(node, Project):
            inner = walk(node.expr)
            var = fresh()
            return Select(
                RecordExpr({a: Proj(VarRef(var), a) for a in node.attrs}),
                ((var, inner),),
            )
        if isinstance(node, SelectEq):
            inner = walk(node.expr)
            row_type = infer_algebra_type(node.expr, schema)
            var = fresh()
            return Select(
                row_record(var, row_type),
                ((var, inner),),
                ((side_expr(var, node.left), side_expr(var, node.right)),),
            )
        if isinstance(node, Product):
            left, right = walk(node.left), walk(node.right)
            lt = infer_algebra_type(node.left, schema)
            rt = infer_algebra_type(node.right, schema)
            lv, rv = fresh(), fresh()
            fields = {a: Proj(VarRef(lv), a) for a in lt.keys()}
            fields.update({a: Proj(VarRef(rv), a) for a in rt.keys()})
            return Select(RecordExpr(fields), ((lv, left), (rv, right)))
        if isinstance(node, RenameAttr):
            inner = walk(node.expr)
            row_type = infer_algebra_type(node.expr, schema)
            mapping = dict(node.mapping)
            var = fresh()
            fields = {
                mapping.get(a, a): Proj(VarRef(var), a) for a in row_type.keys()
            }
            return Select(RecordExpr(fields), ((var, inner),))
        if isinstance(node, Nest):
            inner = walk(node.expr)
            row_type = infer_algebra_type(node.expr, schema)
            group_attrs = tuple(
                a for a in row_type.keys() if a not in node.attrs
            )
            for attr in group_attrs:
                if not isinstance(row_type[attr], AtomType):
                    raise UnsupportedQueryError(
                        "nest governed by non-atomic attribute %s: outside "
                        "the decidable fragment (paper, footnote 3)" % attr
                    )
            outer_var, inner_var = fresh(), fresh()
            group = Select(
                RecordExpr(
                    {a: Proj(VarRef(inner_var), a) for a in node.attrs}
                ),
                ((inner_var, walk(node.expr)),),
                tuple(
                    (Proj(VarRef(inner_var), g), Proj(VarRef(outer_var), g))
                    for g in group_attrs
                ),
            )
            fields = {g: Proj(VarRef(outer_var), g) for g in group_attrs}
            fields[node.label] = group
            return Select(RecordExpr(fields), ((outer_var, inner),))
        if isinstance(node, Unnest):
            inner = walk(node.expr)
            row_type = infer_algebra_type(node.expr, schema)
            element = row_type[node.label]
            if not isinstance(element, SetType) or not isinstance(
                element.element, RecordType
            ):
                raise SchemaError(
                    "unnest: %s is not a set of records" % node.label
                )
            outer_var, member_var = fresh(), fresh()
            fields = {
                a: Proj(VarRef(outer_var), a)
                for a in row_type.keys()
                if a != node.label
            }
            fields.update(
                {
                    a: Proj(VarRef(member_var), a)
                    for a in element.element.keys()
                }
            )
            return Select(
                RecordExpr(fields),
                (
                    (outer_var, inner),
                    (member_var, Proj(VarRef(outer_var), node.label)),
                ),
            )
        if isinstance(node, OuterNest):
            left = walk(node.left)
            lt = infer_algebra_type(node.left, schema)
            rt = infer_algebra_type(node.right, schema)
            outer_var, inner_var = fresh(), fresh()
            group = Select(
                RecordExpr({a: Proj(VarRef(inner_var), a) for a in rt.keys()}),
                ((inner_var, walk(node.right)),),
                tuple(
                    (Proj(VarRef(inner_var), rb), Proj(VarRef(outer_var), la))
                    for la, rb in node.on
                ),
            )
            fields = {a: Proj(VarRef(outer_var), a) for a in lt.keys()}
            fields[node.label] = group
            return Select(RecordExpr(fields), ((outer_var, left),))
        raise SchemaError("unknown algebra expression %r" % (node,))

    return walk(expr)
