"""Value-level nested-relational-algebra operators.

Each operator consumes and produces a :class:`CSet` of :class:`Record`
(a nested relation).  These are the reference semantics the algebra
evaluator and the COQL translation are tested against.
"""

from repro.errors import SchemaError
from repro.objects.values import Record, CSet

__all__ = [
    "op_project",
    "op_select_eq",
    "op_product",
    "op_rename",
    "op_nest",
    "op_unnest",
    "op_outer_nest",
]


def op_project(rows, attrs):
    """π — restrict every row to *attrs*."""
    attrs = tuple(attrs)
    return CSet([row.project(attrs) for row in rows])


def op_select_eq(rows, left, right):
    """σ — keep rows where *left* equals *right*.

    Each side is an attribute name or ``("const", value)``.
    """

    def side(row, spec):
        if isinstance(spec, tuple) and spec and spec[0] == "const":
            return spec[1]
        return row[spec]

    return CSet([row for row in rows if side(row, left) == side(row, right)])


def op_product(left_rows, right_rows):
    """× — concatenate records; attribute names must be disjoint."""
    out = []
    for left in left_rows:
        for right in right_rows:
            overlap = set(left.keys()) & set(right.keys())
            if overlap:
                raise SchemaError(
                    "product of relations with shared attributes %r"
                    % sorted(overlap)
                )
            merged = dict(left.items())
            merged.update(right.items())
            out.append(Record(merged))
    return CSet(out)


def op_rename(rows, mapping):
    """ρ — rename attributes via ``{old: new}``."""
    out = []
    for row in rows:
        fields = {}
        for name, value in row.items():
            fields[mapping.get(name, name)] = value
        if len(fields) != len(row):
            raise SchemaError("rename %r collapses attributes" % (mapping,))
        out.append(Record(fields))
    return CSet(out)


def op_nest(rows, attrs, label):
    """ν — Thomas–Fischer nest: group by the attributes *not* in *attrs*
    and collect the *attrs*-projections into a set-valued column *label*.

    ``nest`` never produces empty sets: every group contains at least the
    row it was built from.
    """
    attrs = tuple(attrs)
    groups = {}
    for row in rows:
        if label in row:
            raise SchemaError("nest label %s already present" % label)
        key_attrs = tuple(a for a in row.keys() if a not in attrs)
        key = row.project(key_attrs)
        groups.setdefault(key, []).append(row.project(attrs))
    out = []
    for key, members in groups.items():
        fields = dict(key.items())
        fields[label] = CSet(members)
        out.append(Record(fields))
    return CSet(out)


def op_unnest(rows, label):
    """μ — unnest the set-valued column *label*.

    Rows whose *label* component is the empty set disappear (the
    classical source of non-invertibility of nest/unnest).
    """
    out = []
    for row in rows:
        inner = row[label]
        if not isinstance(inner, CSet):
            raise SchemaError("unnest: %s is not set-valued" % label)
        rest = {k: v for k, v in row.items() if k != label}
        for member in inner:
            if not isinstance(member, Record):
                raise SchemaError(
                    "unnest: elements of %s must be records" % label
                )
            overlap = set(rest) & set(member.keys())
            if overlap:
                raise SchemaError(
                    "unnest: attribute collision %r" % sorted(overlap)
                )
            fields = dict(rest)
            fields.update(member.items())
            out.append(Record(fields))
    return CSet(out)


def op_outer_nest(left_rows, right_rows, on, label):
    """Outernest (reconstruction of the paper's Example A.1).

    For every row *l* of the left relation, attach under *label* the set
    of right rows matching the join conditions ``on = [(left attr,
    right attr), …]`` — the set may be empty, which is exactly what
    distinguishes outernest from nest and lets the algebra express COQL's
    nested subqueries.
    """
    out = []
    for left in left_rows:
        members = []
        for right in right_rows:
            if all(left[la] == right[ra] for la, ra in on):
                members.append(right)
        if label in left:
            raise SchemaError("outernest label %s already present" % label)
        fields = dict(left.items())
        fields[label] = CSet(members)
        out.append(Record(fields))
    return CSet(out)
