"""Schema constraints: linear inclusion dependencies on the flat encoding.

The decision procedure of the paper assumes an unconstrained schema;
real view-based rewriting almost always runs under constraints.  This
package adds the classic first step: **linear inclusion dependencies**
over the flat index encoding (Section 5.1's relations), in the style of
Ontop's containment-under-LIDs check — containment *under* a set Σ of
dependencies holds iff the unconstrained check succeeds against the
sub-side's canonical database **saturated by the chase** with Σ
(:mod:`repro.constraints.chase`).

A dependency ``R[a, b] ⊆ S[x, y]`` (text syntax ``R[a,b] -> S[x,y]``)
states that the projection of ``R`` onto ``(a, b)`` is included in the
projection of ``S`` onto ``(x, y)``: every ``R`` row entails an ``S``
row agreeing on the mapped attributes, with the unmapped attributes of
``S`` existentially quantified (labelled nulls in the chase).  *Linear*
means a single atom on each side — the fragment whose chase step is a
simple per-atom rule, which is what makes Ontop's memoized
``chaseAllAtoms`` shape applicable.

Declarations are picklable value objects (they cross the parallel
engine's process boundary and participate in content-addressed artifact
keys) and are parsed either from CLI/service strings
(:func:`parse_constraint`/:func:`parse_constraints`) or from ``.coql``
file ``# constraint:`` directives (:mod:`repro.cli`).
"""

from repro.errors import ParseError, SchemaError
from repro.pickling import PicklableSlots

from repro.constraints.chase import chase_atoms, resolve_dependencies

__all__ = [
    "InclusionDependency",
    "parse_constraint",
    "parse_constraints",
    "validate_constraints",
    "chase_atoms",
    "resolve_dependencies",
]


class InclusionDependency(PicklableSlots):
    """A linear inclusion dependency ``source[attrs] ⊆ target[attrs]``.

    Immutable, hashable, and fingerprintable (``__slots__`` value
    object), so a tuple of dependencies participates directly in
    content-addressed artifact keys (``chase``, ``branch_verdict``,
    ``obligation_verdicts``) and pickles to pool workers.
    """

    __slots__ = ("source", "source_attrs", "target", "target_attrs")

    def __init__(self, source, source_attrs, target, target_attrs):
        source_attrs = tuple(source_attrs)
        target_attrs = tuple(target_attrs)
        if not source_attrs or len(source_attrs) != len(target_attrs):
            raise SchemaError(
                "an inclusion dependency maps a non-empty attribute list "
                "onto one of the same length, got %r -> %r"
                % (source_attrs, target_attrs)
            )
        if len(set(source_attrs)) != len(source_attrs) or len(
            set(target_attrs)
        ) != len(target_attrs):
            raise SchemaError(
                "inclusion dependency attributes must be distinct: %r -> %r"
                % (source_attrs, target_attrs)
            )
        object.__setattr__(self, "source", source)
        object.__setattr__(self, "source_attrs", source_attrs)
        object.__setattr__(self, "target", target)
        object.__setattr__(self, "target_attrs", target_attrs)

    def __setattr__(self, name, value):
        raise AttributeError("InclusionDependency is immutable")

    def __eq__(self, other):
        return (
            isinstance(other, InclusionDependency)
            and other.source == self.source
            and other.source_attrs == self.source_attrs
            and other.target == self.target
            and other.target_attrs == self.target_attrs
        )

    def __hash__(self):
        return hash((
            "InclusionDependency", self.source, self.source_attrs,
            self.target, self.target_attrs,
        ))

    def __repr__(self):
        return "%s[%s] -> %s[%s]" % (
            self.source, ",".join(self.source_attrs),
            self.target, ",".join(self.target_attrs),
        )


def parse_constraint(text):
    """Parse ``R[a,b] -> S[x,y]`` into an :class:`InclusionDependency`.

    Whitespace is free; ``=>`` and ``⊆`` are accepted for ``->``.
    """
    normalized = text.strip().replace("⊆", "->").replace("=>", "->")
    parts = normalized.split("->")
    if len(parts) != 2:
        raise ParseError(
            "an inclusion dependency reads R[a,b] -> S[x,y], got %r" % text
        )
    source, source_attrs = _parse_side(parts[0], text)
    target, target_attrs = _parse_side(parts[1], text)
    return InclusionDependency(source, source_attrs, target, target_attrs)


def _parse_side(side, original):
    side = side.strip()
    if "[" not in side or not side.endswith("]"):
        raise ParseError(
            "each side of an inclusion dependency reads NAME[attr,...], "
            "got %r (in %r)" % (side, original)
        )
    name, __, attrs = side[:-1].partition("[")
    name = name.strip()
    attr_list = tuple(a.strip() for a in attrs.split(",") if a.strip())
    if not name or not attr_list:
        raise ParseError(
            "each side of an inclusion dependency needs a relation name "
            "and at least one attribute, got %r (in %r)" % (side, original)
        )
    return (name, attr_list)


def parse_constraints(texts):
    """Parse an iterable of declaration strings (blank lines and ``#``
    comment lines skipped) into a tuple of dependencies."""
    out = []
    for text in texts:
        text = text.strip()
        if not text or text.startswith("#"):
            continue
        out.append(parse_constraint(text))
    return tuple(out)


def validate_constraints(constraints, schema):
    """Check every dependency against the flat *schema*; returns the
    tuple unchanged (raises :class:`SchemaError` otherwise)."""
    constraints = tuple(constraints)
    for dep in constraints:
        for name, attrs in (
            (dep.source, dep.source_attrs), (dep.target, dep.target_attrs)
        ):
            if name not in schema:
                raise SchemaError(
                    "inclusion dependency %r mentions unknown relation %s"
                    % (dep, name)
                )
            known = set(schema[name].keys())
            for attr in attrs:
                if attr not in known:
                    raise SchemaError(
                        "inclusion dependency %r: relation %s has no "
                        "attribute %s" % (dep, name, attr)
                    )
    return constraints
