"""The restricted chase with linear inclusion dependencies.

Containment under a set Σ of linear inclusion dependencies reduces to
unconstrained containment against the sub-side's canonical database
**saturated** by the chase with Σ: each dependency ``R[a] ⊆ S[x]`` whose
premise matches a ground atom and whose conclusion is not yet present
adds the ``S`` atom, filling unmapped positions with **labelled nulls**.

Two properties make this implementation deterministic and (usually)
terminating:

* **Restricted firing** — a dependency fires on an atom only when no
  existing atom already witnesses its conclusion (matching on the
  mapped positions).  Mutually-recursive but *fully-mapped* cycles
  (``R[a] → S[a]``, ``S[a] → R[a]``) reach a fixpoint immediately.
* **Content-addressed nulls** — a null is ``⟨chase:digest⟩`` where the
  digest hashes ``(dependency, source atom, target position)``, so
  re-deriving the same conclusion yields byte-identical atoms in every
  process (the ``chase`` artifact is content-addressed and shared
  across the sequential and parallel engines).

Null-*generating* cycles (``R[a] ⊆ R[b]``) can still diverge, so the
chase is bounded by ``max_rounds``/``max_atoms``; hitting a bound sets
``truncated``.  Truncation is **sound** for the containment use: every
chase atom is entailed by the constraints, so deciding against a prefix
of the saturation can only under-approximate (miss a containment),
never wrongly report one.
"""

import hashlib

from repro.errors import SchemaError

__all__ = ["ChaseResult", "chase_atoms", "resolve_dependencies",
           "chase_null", "is_chase_null", "DEFAULT_MAX_ROUNDS",
           "DEFAULT_MAX_ATOMS"]

#: Fixpoint bounds; generous for canonical databases (tens of atoms).
DEFAULT_MAX_ROUNDS = 16
DEFAULT_MAX_ATOMS = 512

_NULL_PREFIX = "⟨chase:"
_NULL_SUFFIX = "⟩"


def chase_null(dep, source_atom, position):
    """The labelled null for *position* of the atom *dep* derives from
    *source_atom* — a pure function of its arguments, so rederivation is
    idempotent and cross-process stable."""
    payload = "%r|%s|%r|%d" % (
        dep, source_atom.pred, tuple(t.value for t in source_atom.args),
        position,
    )
    digest = hashlib.sha256(payload.encode("utf-8")).hexdigest()[:12]
    return "%s%s%s" % (_NULL_PREFIX, digest, _NULL_SUFFIX)


def is_chase_null(value):
    """True when *value* is a chase-invented labelled null."""
    return (
        isinstance(value, str)
        and value.startswith(_NULL_PREFIX)
        and value.endswith(_NULL_SUFFIX)
    )


def resolve_dependencies(constraints, schema):
    """Resolve attribute names to positions of the flat encoding.

    Relation atoms carry one argument per attribute **in sorted
    attribute order** (:mod:`repro.coql.encode`), so a dependency's
    attribute lists become position lists against *schema*
    (``{relation: RecordType}``).

    :returns: a tuple of ``(source pred, source positions, target pred,
        target positions, target width)`` tuples, in input order.
    """
    resolved = []
    for dep in constraints:
        sides = []
        for name, attrs in (
            (dep.source, dep.source_attrs), (dep.target, dep.target_attrs)
        ):
            if name not in schema:
                raise SchemaError(
                    "inclusion dependency %r mentions unknown relation %s"
                    % (dep, name)
                )
            keys = schema[name].keys()
            positions = []
            for attr in attrs:
                if attr not in keys:
                    raise SchemaError(
                        "inclusion dependency %r: relation %s has no "
                        "attribute %s" % (dep, name, attr)
                    )
                positions.append(keys.index(attr))
            sides.append((name, tuple(positions), len(keys)))
        (source, source_pos, __), (target, target_pos, width) = sides
        resolved.append((dep, source, source_pos, target, target_pos, width))
    return tuple(resolved)


class ChaseResult:
    """The saturation of a ground atom set under inclusion dependencies.

    Attributes:
        atoms: original + derived atoms, derivation order (the original
            prefix is untouched, so downstream consumers may index it).
        added: just the derived atoms, in derivation order.
        rounds: fixpoint rounds performed.
        truncated: True when a ``max_rounds``/``max_atoms`` bound cut
            the saturation short (sound: see module docstring).
    """

    __slots__ = ("atoms", "added", "rounds", "truncated")

    def __init__(self, atoms, added, rounds, truncated):
        self.atoms = tuple(atoms)
        self.added = tuple(added)
        self.rounds = rounds
        self.truncated = truncated

    def __repr__(self):
        return "ChaseResult(atoms=%d, added=%d, rounds=%d%s)" % (
            len(self.atoms), len(self.added), self.rounds,
            ", truncated" if self.truncated else "",
        )


def chase_atoms(atoms, resolved, max_rounds=DEFAULT_MAX_ROUNDS,
                max_atoms=DEFAULT_MAX_ATOMS):
    """Saturate ground *atoms* under *resolved* dependencies
    (:func:`resolve_dependencies` output).

    Deterministic: rounds sweep atoms in order and dependencies in
    declaration order, and nulls are content-addressed, so two runs (in
    any process) produce identical :class:`ChaseResult` atoms.
    """
    from repro.cq.terms import Const, Atom

    work = list(atoms)
    # Satisfaction index: (target pred, target positions) -> projections
    # already present.  Shared across dependencies with the same target
    # projection, maintained incrementally as atoms are added.
    witnessed = {}

    def project(atom, positions):
        return tuple(atom.args[p].value for p in positions)

    def witnesses_for(pred, positions):
        key = (pred, positions)
        if key not in witnessed:
            witnessed[key] = {
                project(atom, positions)
                for atom in work
                if atom.pred == pred and atom.arity > max(positions)
            }
        return witnessed[key]

    def note(atom):
        for (pred, positions), seen in witnessed.items():
            if atom.pred == pred and atom.arity > max(positions):
                seen.add(project(atom, positions))

    added = []
    rounds = 0
    truncated = False
    frontier = list(work)
    while frontier and not truncated:
        if rounds >= max_rounds:
            truncated = True
            break
        rounds += 1
        new = []
        for atom in frontier:
            for dep, source, source_pos, target, target_pos, width in resolved:
                if atom.pred != source:
                    continue
                if atom.arity <= max(source_pos):
                    raise SchemaError(
                        "inclusion dependency %r read past the arity of "
                        "%s/%d" % (dep, atom.pred, atom.arity)
                    )
                values = project(atom, source_pos)
                seen = witnesses_for(target, target_pos)
                if values in seen:
                    continue
                args = [None] * width
                for value, position in zip(values, target_pos):
                    args[position] = Const(value)
                for position in range(width):
                    if args[position] is None:
                        args[position] = Const(
                            chase_null(dep, atom, position)
                        )
                derived = Atom(target, tuple(args))
                work.append(derived)
                new.append(derived)
                added.append(derived)
                note(derived)
                if len(work) >= max_atoms:
                    truncated = True
                    break
            if truncated:
                break
        frontier = new
    return ChaseResult(work, added, rounds, truncated)
