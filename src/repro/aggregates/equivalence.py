"""Equivalence and containment of aggregate queries (Section 7).

Single-block queries — theorem (reconstructed from the paper's Section 7
sketch, validated in the tests against symbolic evaluation): for an
uninterpreted aggregate f, ``γ_Ḡ,f(V)(Q) ≡ γ_Ḡ',f(V')(Q')`` iff the core
conjunctive queries ``Q(Ḡ, V)`` and ``Q'(Ḡ', V')`` are equivalent:
grouping columns are *output*, so groups must match per identical key
and be equal as sets — i.e. the (key, value) row sets coincide.  Hence
equivalence of conjunctive queries with grouping and aggregation is
NP-complete (it inherits both bounds from conjunctive-query
equivalence).

Nested aggregation — inner aggregate values are uninterpreted, so they
compare equal exactly when the underlying groups do; equivalence
of the nested query is equality of the grouping-tree answers, decided by
**strong simulation** both ways.
"""

from repro.errors import IncomparableQueriesError
from repro.cq.terms import Var
from repro.cq.query import ConjunctiveQuery
from repro.cq.containment import contains as cq_contains, equivalent as cq_equivalent
from repro.grouping.strong import is_strongly_simulated

__all__ = [
    "aggregate_equivalent",
    "aggregate_contained",
    "nested_aggregate_equivalent",
]


def aggregate_equivalent(first, second):
    """Equivalence of two single-block aggregate queries (NP-complete).

    True iff the queries return the same ``(group key, f(group))`` rows
    on every database, for every interpretation of the aggregate.
    """
    if first.func != second.func:
        return False
    if len(first.group_by) != len(second.group_by):
        raise IncomparableQueriesError(
            "different numbers of grouping columns: %d vs %d"
            % (len(first.group_by), len(second.group_by))
        )
    return cq_equivalent(first.core_cq(), second.core_cq())


def aggregate_contained(sup, sub):
    """``sub ⊑ sup`` as result sets, for every interpretation of f.

    Every output row ``(ḡ, f(G))`` of *sub* must appear in *sup* — i.e.
    *sup* must produce key ḡ with the *same* group.  Decided by two
    classical containment checks:

    1. ``core(sub) ⊑ core(sup)`` — sub's keys appear in sup with
       ``G_sub(ḡ) ⊆ G_sup(ḡ)``;
    2. ``L ⊑ core(sub)`` where ``L(ḡ, v) := body_sup(ḡ, v) ∧
       ∃ body_sub(ḡ, ·)`` — at sub's keys, sup's groups have nothing
       extra.
    """
    if sup.func != sub.func:
        return False
    if len(sup.group_by) != len(sub.group_by):
        raise IncomparableQueriesError(
            "different numbers of grouping columns: %d vs %d"
            % (len(sup.group_by), len(sub.group_by))
        )
    core_sub = sub.core_cq().rename_apart("_sub")
    core_sup = sup.core_cq().rename_apart("_sup")
    if not cq_contains(core_sup, core_sub):
        return False
    # Build L: sup's body plus sub's body with the group keys identified.
    alignment = {}
    for sub_term, sup_term in zip(core_sub.head[:-1], core_sup.head[:-1]):
        if isinstance(sub_term, Var):
            alignment[sub_term] = sup_term
    aligned_sub_body = tuple(a.substitute(alignment) for a in core_sub.body)
    paired = ConjunctiveQuery(
        core_sup.head, core_sup.body + aligned_sub_body, "paired"
    )
    return cq_contains(core_sub.substitute(alignment), paired)


def nested_aggregate_equivalent(first, second, witnesses=None):
    """Equivalence of nested aggregate queries.

    Requires matching aggregate functions level-by-level; the grouping
    trees must then produce equal nested answers on every database —
    strong simulation in both directions.
    """
    if first.funcs() != second.funcs():
        return False
    first_tree = first.to_grouping()
    second_tree = second.to_grouping()
    first_tree.require_same_shape(second_tree)
    return is_strongly_simulated(
        first_tree, second_tree, witnesses=witnesses
    ) and is_strongly_simulated(second_tree, first_tree, witnesses=witnesses)
