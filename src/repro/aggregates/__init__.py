"""Queries with grouping and aggregation (paper, Section 7).

Complex objects and aggregates are naturally related [33]: a group-by
query is a nested query whose inner sets are consumed by an aggregate
function.  With **uninterpreted** aggregate functions, two aggregate
queries are equivalent iff their grouping structures produce identical
groups — which the paper decides via strong simulation, giving:

* equivalence of conjunctive queries with grouping and aggregation is
  **NP-complete**;
* containment/equivalence stays decidable under arbitrary *nesting* of
  aggregation, as long as aggregated columns are not joined or selected
  on.

* :mod:`repro.aggregates.query` — single-level and nested aggregate
  queries;
* :mod:`repro.aggregates.semantics` — evaluation with concrete
  (count/sum/min/max) and symbolic (uninterpreted) aggregates;
* :mod:`repro.aggregates.equivalence` — the decision procedures.
"""

from repro.aggregates.query import AggregateQuery, NestedAggregateQuery
from repro.aggregates.semantics import (
    evaluate_aggregate,
    evaluate_symbolic,
    AGGREGATE_FUNCTIONS,
)
from repro.aggregates.rewrites import (
    RewriteError,
    verify_rewrite,
    eliminate_redundant_atoms,
)
from repro.aggregates.equivalence import (
    aggregate_equivalent,
    nested_aggregate_equivalent,
    aggregate_contained,
)

__all__ = [
    "AggregateQuery",
    "NestedAggregateQuery",
    "evaluate_aggregate",
    "evaluate_symbolic",
    "AGGREGATE_FUNCTIONS",
    "aggregate_equivalent",
    "nested_aggregate_equivalent",
    "aggregate_contained",
    "RewriteError",
    "verify_rewrite",
    "eliminate_redundant_atoms",
]
