"""Verified rewrite rules for aggregate queries.

Query optimizers apply group-by transformations ([17, 13, 29, 35, 28]);
the paper contributes the missing *test*.  This module packages common
transformations as functions that both **produce** the rewritten query
and **verify** it with the decision procedure, refusing silently-unsound
rewrites.
"""

from repro.errors import ReproError
from repro.aggregates.query import AggregateQuery
from repro.aggregates.equivalence import aggregate_equivalent

__all__ = [
    "RewriteError",
    "eliminate_redundant_atoms",
    "verify_rewrite",
]


class RewriteError(ReproError):
    """A rewrite did not preserve equivalence."""


def verify_rewrite(original, rewritten):
    """Return *rewritten* if provably equivalent to *original*.

    Raises :class:`RewriteError` otherwise — the optimizer's safety net.
    """
    if not aggregate_equivalent(original, rewritten):
        raise RewriteError(
            "rewrite does not preserve aggregate equivalence: %r vs %r"
            % (original, rewritten)
        )
    return rewritten


def eliminate_redundant_atoms(query):
    """Drop body atoms that do not change the groups (verified).

    Greedy: try removing each atom; keep the removal when the
    equivalence test passes.  This is aggregate-aware minimization —
    an atom that is redundant for the *core tuples* is redundant for the
    groups too, but an atom that shrinks groups is kept even when a
    plain-CQ minimizer over a projected head might drop it.
    """
    body = list(query.body)
    changed = True
    while changed:
        changed = False
        for index in range(len(body)):
            candidate_body = body[:index] + body[index + 1:]
            if not candidate_body:
                continue
            try:
                candidate = AggregateQuery(
                    tuple(candidate_body),
                    query.group_by,
                    query.func,
                    query.target,
                    query.name,
                )
            except ReproError:
                continue  # removal would unbind head variables
            if aggregate_equivalent(query, candidate):
                body = candidate_body
                changed = True
                break
    return AggregateQuery(
        tuple(body), query.group_by, query.func, query.target, query.name
    )
