"""Evaluation of aggregate queries.

Two modes:

* **concrete** — apply a real aggregate function (count / sum / min /
  max) to each group's set of value tuples (set semantics, per the
  paper's formalism);
* **symbolic** — apply an *uninterpreted* function: the "aggregate
  value" is the pair ``(func, the group as a frozen set)``, so two
  symbolic values are equal iff the groups are.  Uninterpreted semantics
  is what the equivalence theorem quantifies over ("equivalent for every
  interpretation of f").
"""

from repro.errors import EvaluationError
from repro.cq.query import ConjunctiveQuery
from repro.cq.evaluate import evaluate_bindings
from repro.cq.terms import is_var

__all__ = ["AGGREGATE_FUNCTIONS", "evaluate_aggregate", "evaluate_symbolic"]


AGGREGATE_FUNCTIONS = {
    "count": lambda values: len(values),
    "sum": lambda values: sum(values),
    "min": lambda values: min(values) if values else None,
    "max": lambda values: max(values) if values else None,
}


def _groups(query, database):
    """``{group-by tuple: frozenset of target values}``."""
    carrier = ConjunctiveQuery((), query.body, query.name)
    groups = {}
    for binding in evaluate_bindings(carrier, database):
        key = tuple(binding[g] for g in query.group_by)
        value = binding[query.target] if is_var(query.target) else query.target.value
        groups.setdefault(key, set()).add(value)
    return {key: frozenset(values) for key, values in groups.items()}


def evaluate_aggregate(query, database, func=None):
    """Evaluate with a concrete aggregate function.

    :returns: frozenset of ``group_by + (aggregate value,)`` tuples.
    """
    func_name = func or query.func
    if func_name not in AGGREGATE_FUNCTIONS:
        raise EvaluationError(
            "unknown concrete aggregate %r (use evaluate_symbolic for "
            "uninterpreted functions)" % func_name
        )
    implementation = AGGREGATE_FUNCTIONS[func_name]
    return frozenset(
        key + (implementation(sorted(values, key=repr)),)
        for key, values in _groups(query, database).items()
    )


def evaluate_symbolic(query, database):
    """Evaluate with the uninterpreted aggregate.

    The aggregate value of a group is the pair ``(func, group)`` — the
    freest possible interpretation.
    """
    return frozenset(
        key + ((query.func, values),)
        for key, values in _groups(query, database).items()
    )
