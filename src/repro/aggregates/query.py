"""Aggregate query classes.

:class:`AggregateQuery` is the SQL-ish single block::

    SELECT Ḡ, f(V) FROM body GROUP BY Ḡ

over a conjunctive body with set semantics (the paper's formalism: the
aggregate consumes the *set* of value tuples of the group).

:class:`NestedAggregateQuery` chains blocks: each level groups the
previous level's output further and aggregates a column; aggregated
columns are only carried upward, never joined or selected on — the
fragment the paper proves decidable.  Nested aggregate queries translate
to grouping-query trees (``to_grouping``), on which equivalence is
strong simulation both ways.
"""

from repro.errors import ReproError, UnsupportedQueryError
from repro.cq.terms import Atom, is_var
from repro.grouping.query import GroupingNode, GroupingQuery

__all__ = ["AggregateQuery", "NestedAggregateQuery"]


class AggregateQuery:
    """``SELECT group_by, func(target) FROM body GROUP BY group_by``.

    :param body: tuple of CQ atoms.
    :param group_by: tuple of variables (the output grouping columns).
    :param func: aggregate function name ("count", "sum", "min", "max",
        or any uninterpreted name).
    :param target: the aggregated variable (ignored for "count", which
        counts distinct value tuples; still recorded for the encoding).
    """

    __slots__ = ("body", "group_by", "func", "target", "name")

    def __init__(self, body, group_by, func, target, name="agg"):
        body = tuple(body)
        group_by = tuple(group_by)
        for atom in body:
            if not isinstance(atom, Atom):
                raise ReproError("body must contain atoms")
        body_vars = {v for atom in body for v in atom.variables()}
        for var in tuple(group_by) + (target,):
            if is_var(var) and var not in body_vars:
                raise ReproError("unsafe aggregate query: %r not in body" % (var,))
        object.__setattr__(self, "body", body)
        object.__setattr__(self, "group_by", group_by)
        object.__setattr__(self, "func", func)
        object.__setattr__(self, "target", target)
        object.__setattr__(self, "name", name)

    def __setattr__(self, name, value):
        raise AttributeError("AggregateQuery is immutable")

    def grouping_query(self):
        """The grouping-query view: group-by columns become values of the
        root; the aggregated column becomes the single child node whose
        index is the group-by tuple."""
        child = GroupingNode(
            "__group",
            (),
            {"t": self.target},
            tuple(self.group_by),
            (),
        )
        root = GroupingNode(
            "",
            self.body,
            {("g%d" % i): g for i, g in enumerate(self.group_by)},
            (),
            (child,),
        )
        return GroupingQuery(root, self.name)

    def core_cq(self):
        """The plain conjunctive query ``q(Ḡ, target) :- body``.

        Single-block aggregate equivalence with an uninterpreted function
        reduces to classical equivalence of this query (see
        ``aggregates.equivalence``).
        """
        from repro.cq.query import ConjunctiveQuery

        return ConjunctiveQuery(
            tuple(self.group_by) + (self.target,), self.body, self.name
        )

    def __repr__(self):
        return "AggregateQuery(%s(%r) group by %r; %d atoms)" % (
            self.func,
            self.target,
            self.group_by,
            len(self.body),
        )


class NestedAggregateQuery:
    """A chain of aggregation levels over one conjunctive body.

    ``levels`` lists, outermost first, ``(group_by, func)`` pairs; the
    innermost level aggregates the body column *target*, each outer
    level aggregates the inner level's aggregate values — e.g.::

        SELECT d, f(per_e) FROM
          (SELECT d, e, g(v) AS per_e FROM body GROUP BY d, e)
        GROUP BY d

    is ``NestedAggregateQuery(body, [((d,), "f"), ((d, e), "g")], v)``.
    Inner aggregate results are uninterpreted values: they are equal only
    when the underlying groups are, which is exactly why they behave like
    the paper's *indexes* and why equivalence reduces to strong
    simulation of the grouping tree (``to_grouping``).

    Restrictions (the paper's): each level refines the outer grouping,
    and aggregated columns are only carried upward — never joined or
    selected on (enforced by construction, since levels group by body
    variables only).
    """

    __slots__ = ("body", "levels", "target", "name")

    def __init__(self, body, levels, target, name="nagg"):
        body = tuple(body)
        levels = tuple((tuple(group_by), func) for group_by, func in levels)
        if not levels:
            raise ReproError("at least one aggregation level is required")
        body_vars = {v for atom in body for v in atom.variables()}
        previous = None
        for group_by, __ in levels:
            for var in group_by:
                if var not in body_vars:
                    raise ReproError(
                        "unsafe nested aggregate: %r not in body" % (var,)
                    )
            if previous is not None and not set(previous) <= set(group_by):
                raise UnsupportedQueryError(
                    "inner levels must refine the outer grouping "
                    "(outer %r vs inner %r)" % (previous, group_by)
                )
            previous = group_by
        if is_var(target) and target not in body_vars:
            raise ReproError("unsafe nested aggregate: %r not in body" % (target,))
        object.__setattr__(self, "body", body)
        object.__setattr__(self, "levels", levels)
        object.__setattr__(self, "target", target)
        object.__setattr__(self, "name", name)

    def __setattr__(self, name, value):
        raise AttributeError("NestedAggregateQuery is immutable")

    def funcs(self):
        """The aggregate function names, outermost first."""
        return tuple(func for __, func in self.levels)

    def to_grouping(self):
        """The grouping-query tree: one node per aggregation level."""

        def build(position):
            group_by, __ = self.levels[position]
            values = {("g%d" % i): g for i, g in enumerate(group_by)}
            if position + 1 < len(self.levels):
                children = (build(position + 1),)
            else:
                children = ()
                values["t"] = self.target
            label = "L%d" % position
            return GroupingNode(label, (), values, tuple(group_by), children)

        inner = build(0)
        root = GroupingNode("", self.body, {}, (), (inner,))
        return GroupingQuery(root, self.name)

    def __repr__(self):
        inner = "; ".join(
            "%s by %r" % (func, group_by) for group_by, func in self.levels
        )
        return "NestedAggregateQuery(%s; target=%r)" % (inner, self.target)
