"""NP-completeness substrate (hardness side of the paper's theorems).

The paper proves simulation, strong simulation, and aggregate
equivalence NP-complete.  Membership is witnessed by the certificate
procedures in ``repro.grouping``; hardness by reduction from classical
NP-complete problems, which this package makes executable:

* :mod:`repro.complexity.sat` — a small DPLL solver (the independent
  oracle the reductions are validated against);
* :mod:`repro.complexity.reductions` — 3-colorability and 3SAT encoded
  as conjunctive-query containment / simulation instances.
"""

from repro.complexity.sat import solve_sat, random_3sat
from repro.complexity.reductions import (
    coloring_to_containment,
    sat_to_containment,
    coloring_to_simulation,
    random_graph,
    greedy_is_colorable,
)

__all__ = [
    "solve_sat",
    "random_3sat",
    "coloring_to_containment",
    "sat_to_containment",
    "coloring_to_simulation",
    "random_graph",
    "greedy_is_colorable",
]
