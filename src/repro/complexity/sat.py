"""A small DPLL SAT solver.

CNF formulas are lists of clauses; a clause is a tuple of non-zero
integers (DIMACS convention: ``-3`` is the negation of variable 3).
Used as the independent oracle when validating the NP-hardness
reductions in :mod:`repro.complexity.reductions`.
"""

import random

__all__ = ["solve_sat", "random_3sat"]


def solve_sat(clauses):
    """Solve a CNF formula; return a satisfying ``{var: bool}`` or None.

    DPLL with unit propagation and pure-literal elimination.
    """
    clauses = [tuple(clause) for clause in clauses]
    assignment = {}
    result = _dpll(clauses, assignment)
    return result


def _dpll(clauses, assignment):
    clauses = _simplify(clauses, assignment)
    if clauses is None:
        return None
    if not clauses:
        return dict(assignment)

    # Unit propagation.
    for clause in clauses:
        if len(clause) == 1:
            literal = clause[0]
            assignment[abs(literal)] = literal > 0
            result = _dpll(clauses, assignment)
            if result is None:
                del assignment[abs(literal)]
            return result

    # Pure-literal elimination.
    polarity = {}
    for clause in clauses:
        for literal in clause:
            polarity.setdefault(abs(literal), set()).add(literal > 0)
    for var, signs in polarity.items():
        if len(signs) == 1:
            assignment[var] = signs == {True}
            result = _dpll(clauses, assignment)
            if result is None:
                del assignment[var]
            return result

    # Branch on the first variable of the first clause.
    variable = abs(clauses[0][0])
    for choice in (True, False):
        assignment[variable] = choice
        result = _dpll(clauses, assignment)
        if result is not None:
            return result
        del assignment[variable]
    return None


def _simplify(clauses, assignment):
    out = []
    for clause in clauses:
        satisfied = False
        remaining = []
        for literal in clause:
            var = abs(literal)
            if var in assignment:
                if assignment[var] == (literal > 0):
                    satisfied = True
                    break
            else:
                remaining.append(literal)
        if satisfied:
            continue
        if not remaining:
            return None  # empty clause: conflict
        out.append(tuple(remaining))
    return out


def random_3sat(variables, clauses, seed=0):
    """A random 3-CNF formula with the given counts."""
    rng = random.Random(seed)
    formula = []
    for __ in range(clauses):
        chosen = rng.sample(range(1, variables + 1), min(3, variables))
        formula.append(
            tuple(v if rng.random() < 0.5 else -v for v in chosen)
        )
    return formula
