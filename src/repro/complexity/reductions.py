"""NP-hardness reductions, executable.

* :func:`coloring_to_containment` — G is 3-colorable iff ``Q_K3 ⊑ Q_G``
  (the classical Chandra–Merlin hardness argument: a containment mapping
  from the G-query into the frozen triangle is exactly a 3-coloring).
* :func:`sat_to_containment` — a CNF is satisfiable iff ``Q_facts ⊑
  Q_clauses`` where ``Q_facts`` enumerates the satisfying triples of
  each clause shape as constants.
* :func:`coloring_to_simulation` — the same instance lifted to depth-2
  grouping queries, demonstrating that simulation inherits the hardness
  (it generalizes containment) while exercising the witness machinery.

Since simulation restricted to depth 1 *is* containment, these give the
hardness side of the paper's NP-completeness theorems in executable
form; the benchmarks chart the exponential wall on them.
"""

import random

from repro.cq.terms import Var, Const, Atom
from repro.cq.query import ConjunctiveQuery
from repro.grouping.query import GroupingNode, GroupingQuery

__all__ = [
    "coloring_to_containment",
    "sat_to_containment",
    "coloring_to_simulation",
    "random_graph",
    "greedy_is_colorable",
]


def random_graph(nodes, edges, seed=0):
    """A random simple graph as a sorted tuple of (u, v) pairs."""
    rng = random.Random(seed)
    chosen = set()
    attempts = 0
    while len(chosen) < edges and attempts < edges * 20:
        attempts += 1
        u, v = rng.sample(range(nodes), 2)
        chosen.add((min(u, v), max(u, v)))
    return tuple(sorted(chosen))


def coloring_to_containment(edges):
    """Encode 3-colorability of *edges* as a containment instance.

    Returns ``(sub, sup)`` such that the graph is 3-colorable iff
    ``sub ⊑ sup`` (i.e. ``repro.cq.contains(sup, sub)``): *sub* is the
    symmetric triangle (boolean query over constants), *sup* the query
    with one edge atom per graph edge.
    """
    triangle = []
    for i in range(3):
        j = (i + 1) % 3
        triangle.append(Atom("edge", (Const("c%d" % i), Const("c%d" % j))))
        triangle.append(Atom("edge", (Const("c%d" % j), Const("c%d" % i))))
    sub = ConjunctiveQuery((), triangle, "k3")
    body = [
        Atom("edge", (Var("N%d" % u), Var("N%d" % v))) for u, v in edges
    ]
    sup = ConjunctiveQuery((), body, "graph")
    return sub, sup


def sat_to_containment(clauses):
    """Encode CNF satisfiability as a containment instance.

    Returns ``(sub, sup)`` with: the formula is satisfiable iff
    ``sub ⊑ sup``.  For each clause-sign shape *t*, *sub* enumerates the
    satisfying boolean triples of *t* as constant atoms ``rt(...)``;
    *sup* has one ``rt(Xi, Xj, Xk)`` atom per clause.  A containment
    mapping is exactly a satisfying assignment.
    """
    sub_atoms = set()
    sup_atoms = []
    for clause in clauses:
        signs = tuple(literal > 0 for literal in clause)
        pred = "r" + "".join("p" if s else "n" for s in signs)
        variables = tuple(Var("X%d" % abs(literal)) for literal in clause)
        sup_atoms.append(Atom(pred, variables))
        arity = len(clause)
        for bits in range(2 ** arity):
            values = tuple(bool(bits >> i & 1) for i in range(arity))
            if any(v == s for v, s in zip(values, signs)):
                sub_atoms.add(
                    Atom(pred, tuple(Const(int(v)) for v in values))
                )
    sub = ConjunctiveQuery((), tuple(sorted(sub_atoms, key=repr)), "facts")
    sup = ConjunctiveQuery((), tuple(sup_atoms), "clauses")
    return sub, sup


def coloring_to_simulation(edges):
    """Lift the 3-colorability instance to depth-2 grouping queries.

    Both queries expose a one-group nesting over a marker relation; the
    superquery's inner body carries the graph, so the simulation
    certificate must solve the coloring inside the inner level.  The
    graph is 3-colorable iff ``sub ⊴ sup``.
    """
    sub_tri, sup_graph = coloring_to_containment(edges)
    anchor = Var("A")
    sub_child = GroupingNode("c", sub_tri.body, {"m": anchor}, (anchor,), ())
    sub_root = GroupingNode("", (Atom("mark", (anchor,)),), {}, (), (sub_child,))
    sup_anchor = Var("B")
    sup_child = GroupingNode(
        "c", sup_graph.body, {"m": sup_anchor}, (sup_anchor,), ()
    )
    sup_root = GroupingNode(
        "", (Atom("mark", (sup_anchor,)),), {}, (), (sup_child,)
    )
    return (
        GroupingQuery(sub_root, "k3_sim"),
        GroupingQuery(sup_root, "graph_sim"),
    )


def greedy_is_colorable(edges, colors=3, attempts=500, seed=0):
    """A randomized exact 3-coloring check for small graphs.

    Exhaustive backtracking (the *attempts*/seed parameters only shuffle
    the vertex order to keep typical cases fast); used as the
    independent oracle validating the reductions.
    """
    nodes = sorted({u for e in edges for u in e})
    adjacency = {n: set() for n in nodes}
    for u, v in edges:
        adjacency[u].add(v)
        adjacency[v].add(u)
    rng = random.Random(seed)
    order = list(nodes)
    rng.shuffle(order)
    coloring = {}

    def assign(position):
        if position == len(order):
            return True
        node = order[position]
        for color in range(colors):
            if all(coloring.get(m) != color for m in adjacency[node]):
                coloring[node] = color
                if assign(position + 1):
                    return True
                del coloring[node]
        return False

    return assign(0)
